"""Integration tests: the assembled HyperConnect inside a full system."""

import pytest

from repro.axi import LinkChecker, PropagationProbe
from repro.hyperconnect import HyperConnect
from repro.hyperconnect.regs import REG_PERIOD, PORT_NOMINAL_BURST, \
    port_register
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem

from conftest import drain


class TestLatencyStructure:
    """The paper's Fig. 3(a) latency budget, asserted exactly."""

    def probes(self, soc):
        return {
            "AR": PropagationProbe(soc.port(0).ar, soc.master_link.ar),
            "AW": PropagationProbe(soc.port(0).aw, soc.master_link.aw),
            "R": PropagationProbe(soc.master_link.r, soc.port(0).r),
            "B": PropagationProbe(soc.master_link.b, soc.port(0).b),
        }

    def test_address_channels_four_cycles(self, hc_soc):
        probes = self.probes(hc_soc)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_read(0x0, 16)
        dma.enqueue_write(0x9000, 16)
        drain(hc_soc)
        assert probes["AR"].latency_max == 4
        assert probes["AW"].latency_max == 4

    def test_data_channels_two_cycles(self, hc_soc):
        probes = self.probes(hc_soc)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_read(0x0, 256)
        dma.enqueue_write(0x9000, 256)
        drain(hc_soc)
        assert probes["R"].latency_max == 2
        assert probes["B"].latency_max == 2

    def test_w_channel_two_cycles_steady_state(self, hc_soc):
        probe = PropagationProbe(hc_soc.port(0).w, hc_soc.master_link.w)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0), w_beat_gap=8)
        dma.enqueue_write(0x9000, 512)
        drain(hc_soc)
        assert probe.stats.minimum == 2


class TestProtocolTransparency:
    """'Completely transparent to both the HAs and the memory subsystem'."""

    def test_master_side_protocol_clean(self, hc_soc):
        checker = LinkChecker(hc_soc.master_link, strict=False)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0), burst_len=64)
        dma.enqueue_read(0x0, 8192)
        dma.enqueue_write(0x9000, 8192)
        drain(hc_soc)
        checker.assert_clean()

    def test_ha_side_protocol_clean(self, hc_soc):
        checker = LinkChecker(hc_soc.port(0), strict=False)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0), burst_len=64)
        dma.enqueue_read(0x0, 8192)
        dma.enqueue_write(0x9000, 8192)
        drain(hc_soc)
        checker.assert_clean()

    def test_end_to_end_data_integrity_through_split(self):
        soc = SocSystem.build(ZCU102, n_ports=2, with_store=True)
        soc.store.fill_pattern(0x1000, 4096, seed=9)
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=64,
                     collect_data=True)
        job = dma.enqueue_read(0x1000, 4096)
        drain(soc)
        assert bytes(job.result) == soc.store.read(0x1000, 4096)

    def test_write_data_integrity_through_split(self):
        soc = SocSystem.build(ZCU102, n_ports=2, with_store=True)
        payload = bytes((i * 13 + 5) & 0xFF for i in range(2048))
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=128)
        dma.enqueue_write(0x5000, 2048, data=payload)
        drain(soc)
        assert soc.store.read(0x5000, 2048) == payload


class TestRuntimeReconfiguration:
    def test_period_register_reaches_central_unit(self, hc_soc):
        hc_soc.driver.set_period(1234)
        assert hc_soc.interconnect.central.period == 1234
        assert hc_soc.driver.regs.read(REG_PERIOD) == 1234

    def test_nominal_burst_register_reaches_config(self, hc_soc):
        hc_soc.driver.set_nominal_burst(1, 32)
        assert hc_soc.interconnect.configs[1].nominal_burst == 32

    def test_nominal_burst_change_affects_splitting(self, hc_soc):
        hc_soc.driver.set_nominal_burst(0, 8)
        issued = []
        hc_soc.master_link.ar.subscribe_push(
            lambda cycle, beat: issued.append(beat.length))
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0), burst_len=16)
        dma.enqueue_read(0x0, 256)
        drain(hc_soc)
        assert issued == [8, 8]

    def test_budget_applies_at_next_recharge(self):
        soc = SocSystem.build(ZCU102, n_ports=2, period=1000)
        soc.driver.set_budget(0, 2)
        ts = soc.interconnect.supervisors[0]
        # not yet recharged: still unlimited from before
        assert ts.budget_remaining is None
        soc.sim.run(1001)
        assert ts.budget_remaining == 2

    def test_unlimited_budget_applies_immediately(self):
        soc = SocSystem.build(ZCU102, n_ports=2, period=100000)
        soc.driver.set_budget(0, 2)
        soc.sim.run(100001)
        soc.driver.set_budget(0, None)
        assert soc.interconnect.supervisors[0].budget_remaining is None

    def test_global_disable_freezes_forwarding(self, hc_soc):
        hc_soc.driver.disable()
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        job = dma.enqueue_read(0x0, 256)
        hc_soc.sim.run(5000)
        assert job.completed is None
        hc_soc.driver.enable()
        drain(hc_soc)
        assert job.completed is not None

    def test_synchronous_recharge_hits_all_ports(self):
        soc = SocSystem.build(ZCU102, n_ports=3, period=500)
        for port in range(3):
            soc.driver.set_budget(port, 5)
        soc.sim.run(501)
        assert all(ts.budget_remaining == 5
                   for ts in soc.interconnect.supervisors)
        assert soc.interconnect.central.recharges >= 1


class TestReservationEndToEnd:
    @pytest.mark.parametrize("share_a, share_b", [(0.9, 0.1), (0.7, 0.3),
                                                  (0.5, 0.5)])
    def test_bandwidth_split_matches_configuration(self, share_a, share_b):
        soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
        a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0),
                                   job_bytes=4096, depth=4)
        b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1),
                                   job_bytes=4096, depth=4)
        soc.driver.set_bandwidth_shares({0: share_a, 1: share_b})
        soc.sim.run(200_000)
        total = a.bytes_read + b.bytes_read
        assert a.bytes_read / total == pytest.approx(share_a, abs=0.03)
        assert b.bytes_read / total == pytest.approx(share_b, abs=0.03)

    def test_budget_never_exceeded_within_any_period(self):
        period = 1024
        soc = SocSystem.build(ZCU102, n_ports=2, period=period)
        GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=4096,
                               depth=4)
        soc.driver.set_budget(0, 8)
        grant_cycles = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grant_cycles.append(cycle))
        soc.sim.run(20 * period)
        # skip the first period (budget not yet active), then count
        # issues inside each full period window
        for start in range(period, 19 * period, period):
            issued = sum(1 for cycle in grant_cycles
                         if start <= cycle < start + period)
            assert issued <= 8 + 1  # +1 for a grant in flight at the edge

    def test_unreserved_port_takes_leftover_bandwidth(self):
        soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
        limited = GreedyTrafficGenerator(soc.sim, "lim", soc.port(0),
                                         job_bytes=4096, depth=4)
        free = GreedyTrafficGenerator(soc.sim, "free", soc.port(1),
                                      job_bytes=4096, depth=4)
        soc.driver.set_budget(0, 16)   # 16 txns * 16 beats / 2048 = 12.5%
        soc.sim.run(200_000)
        total = limited.bytes_read + free.bytes_read
        assert free.bytes_read / total > 0.8


class TestConstruction:
    def test_zero_ports_rejected(self, sim):
        from repro.axi import AxiLink
        master = AxiLink(sim, "m")
        with pytest.raises(ConfigurationError):
            HyperConnect(sim, "hc", 0, master)

    def test_width_mismatch_rejected(self, sim):
        from repro.axi import AxiLink
        master = AxiLink(sim, "m", data_bytes=16)
        with pytest.raises(ConfigurationError):
            HyperConnect(sim, "hc", 2, master, data_bytes=8)

    def test_control_interface_attachment(self, hc_soc):
        from repro.axi import AxiLink
        link = AxiLink(hc_soc.sim, "ctrl")
        slave = hc_soc.interconnect.attach_control_interface(link)
        assert hc_soc.interconnect.control_slave is slave
