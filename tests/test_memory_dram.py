"""Unit tests for the in-order DRAM controller model."""

import pytest

from repro.axi import (
    AxiLink,
    Transaction,
    WriteBeat,
    make_read_request,
    make_write_request,
)
from repro.memory import DramTiming, MemorySubsystem, MemoryStore
from repro.sim import ConfigurationError, Simulator


TIMING = DramTiming(read_latency=10, write_latency=5, resp_latency=2)


def make_system(store=None, timing=TIMING, data_depth=64):
    sim = Simulator("mem-test")
    link = AxiLink(sim, "link", data_bytes=16, data_depth=data_depth)
    memory = MemorySubsystem(sim, "mem", link, timing=timing, store=store)
    return sim, link, memory


def push_read(link, address=0x100, length=1):
    txn = Transaction("read", "m", address, length, 16)
    beat = make_read_request(txn, 0)
    link.ar.push(beat)
    return beat


def push_write(link, address=0x100, length=1, data=None):
    txn = Transaction("write", "m", address, length, 16)
    beat = make_write_request(txn, 0)
    link.aw.push(beat)
    for index in range(length):
        chunk = None
        if data is not None:
            chunk = data[index * 16:(index + 1) * 16]
        link.w.push(WriteBeat(last=index == length - 1, data=chunk))
    return beat


class TestReadTiming:
    def test_first_beat_latency(self):
        sim, link, memory = make_system()
        push_read(link)  # pushed at cycle 0, memory ingests at cycle 1
        arrival = []
        link.r.subscribe_push(lambda cycle, beat: arrival.append(cycle))
        sim.run(30)
        # ingested at 1, first data at 1 + read_latency
        assert arrival == [1 + TIMING.read_latency]

    def test_burst_streams_one_beat_per_cycle(self):
        sim, link, memory = make_system()
        push_read(link, length=8)
        arrivals = []
        link.r.subscribe_push(lambda cycle, beat: arrivals.append(cycle))
        sim.run(40)
        assert len(arrivals) == 8
        assert arrivals == list(range(arrivals[0], arrivals[0] + 8))

    def test_rlast_on_final_beat_only(self):
        sim, link, memory = make_system()
        push_read(link, length=4)
        lasts = []
        link.r.subscribe_push(lambda cycle, beat: lasts.append(beat.last))
        sim.run(40)
        assert lasts == [False, False, False, True]

    def test_back_to_back_bursts_saturate_bus(self):
        sim, link, memory = make_system()
        for i in range(4):
            push_read(link, address=0x1000 + 0x100 * i, length=16)
        arrivals = []
        link.r.subscribe_push(lambda cycle, beat: arrivals.append(cycle))
        sim.run(120)
        assert len(arrivals) == 64
        # after the first access latency, the data bus never idles
        assert arrivals[-1] - arrivals[0] == 63


class TestWriteTiming:
    def test_write_response_latency(self):
        sim, link, memory = make_system()
        push_write(link, length=2)
        responses = []
        link.b.subscribe_push(lambda cycle, beat: responses.append(cycle))
        sim.run(40)
        assert len(responses) == 1
        # arrival 1, data start 1+5, beats at 6 and 7, B at 7+2 = 9...
        # B is emitted on the cycle it becomes due or later (1-per-cycle)
        assert responses[0] >= 1 + TIMING.write_latency + 2

    def test_write_waits_for_data(self):
        sim, link, memory = make_system()
        txn = Transaction("write", "m", 0x0, 2, 16)
        link.aw.push(make_write_request(txn, 0))
        responses = []
        link.b.subscribe_push(lambda cycle, beat: responses.append(cycle))
        sim.run(30)
        assert not responses          # no W data yet: must not respond
        link.w.push(WriteBeat(last=False))
        link.w.push(WriteBeat(last=True))
        sim.run(30)
        assert len(responses) == 1


class TestOrdering:
    def test_reads_served_in_order(self):
        sim, link, memory = make_system()
        first = push_read(link, address=0x100, length=1)
        second = push_read(link, address=0x900, length=1)
        order = []
        link.r.subscribe_push(
            lambda cycle, beat: order.append(beat.addr_beat.address))
        sim.run(40)
        assert order == [0x100, 0x900]

    def test_ar_ingested_before_aw_same_cycle(self):
        sim, link, memory = make_system()
        push_read(link, address=0x100, length=1)
        push_write(link, address=0x200, length=1)
        events = []
        link.r.subscribe_push(lambda cycle, beat: events.append("R"))
        link.b.subscribe_push(lambda cycle, beat: events.append("B"))
        sim.run(60)
        assert events == ["R", "B"]


class TestBackpressure:
    def test_r_backpressure_stalls_without_loss(self):
        sim, link, memory = make_system(data_depth=2)
        push_read(link, length=8)
        sim.run(60)             # nobody pops: R channel fills
        received = 0
        for _ in range(100):
            if link.r.can_pop():
                link.r.pop()
                received += 1
            sim.step()
        assert received == 8    # all beats eventually delivered


class TestFunctional:
    def test_read_returns_store_contents(self):
        store = MemoryStore()
        store.write(0x100, bytes(range(32)))
        sim, link, memory = make_system(store=store)
        push_read(link, address=0x100, length=2)
        data = []
        link.r.subscribe_push(lambda cycle, beat: data.append(beat.data))
        sim.run(40)
        assert b"".join(data) == bytes(range(32))

    def test_write_updates_store(self):
        store = MemoryStore()
        sim, link, memory = make_system(store=store)
        payload = bytes(range(16)) + bytes(range(16, 32))
        push_write(link, address=0x40, length=2, data=payload)
        sim.run(40)
        assert store.read(0x40, 32) == payload


class TestRowModel:
    def test_row_miss_penalty_applied(self):
        timing = DramTiming(read_latency=10, write_latency=5,
                            resp_latency=2, row_miss_penalty=20)
        sim, link, memory = make_system(timing=timing)
        push_read(link, address=0x0, length=1)
        arrivals = []
        link.r.subscribe_push(lambda cycle, beat: arrivals.append(cycle))
        sim.run(80)
        first_access = arrivals[0]
        # same row again: no penalty this time
        push_read(link, address=0x10, length=1)
        sim.run(80)
        delta_hit = arrivals[1] - memory.queue_delay.count  # sanity only
        assert first_access == 1 + 10 + 20
        assert len(arrivals) == 2

    def test_row_hit_faster_than_miss(self):
        timing = DramTiming(read_latency=10, write_latency=5,
                            resp_latency=2, row_miss_penalty=20)
        sim, link, memory = make_system(timing=timing)
        arrivals = []
        link.r.subscribe_push(lambda cycle, beat: arrivals.append(cycle))
        push_read(link, address=0x0, length=1)
        sim.run(80)
        issue = sim.now
        push_read(link, address=0x10, length=1)  # same row: hit
        sim.run(80)
        hit_latency = arrivals[1] - issue
        assert hit_latency == 1 + 10  # no penalty


class TestValidation:
    def test_invalid_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            DramTiming(read_latency=0)

    def test_stats_counters(self):
        sim, link, memory = make_system()
        push_read(link, length=4)
        push_write(link, length=2)
        sim.run(60)
        assert memory.reads_served == 1
        assert memory.writes_served == 1
        assert memory.beats_served == 6
        assert memory.idle()


class TestNonIncrBursts:
    def _read_data(self, store, address, length, burst):
        from repro.axi import BurstType, Transaction, make_read_request
        sim, link, memory = make_system(store=store)
        txn = Transaction("read", "m", address, length, 16, burst=burst)
        link.ar.push(make_read_request(txn, 0))
        data = []
        link.r.subscribe_push(lambda cycle, beat: data.append(beat.data))
        sim.run(60)
        return data

    def test_fixed_burst_rereads_same_address(self):
        from repro.axi import BurstType
        store = MemoryStore()
        store.write(0x100, bytes(range(16)))
        store.write(0x110, b"\xAA" * 16)
        data = self._read_data(store, 0x100, 4, BurstType.FIXED)
        assert data == [bytes(range(16))] * 4

    def test_wrap_burst_wraps_at_container(self):
        from repro.axi import BurstType
        store = MemoryStore()
        for index in range(4):
            store.write(0x200 + index * 16, bytes([index]) * 16)
        # container = 4 beats x 16 B = 64 B; start mid-container at +32
        data = self._read_data(store, 0x220, 4, BurstType.WRAP)
        assert [chunk[0] for chunk in data] == [2, 3, 0, 1]

    def test_fixed_write_lands_on_one_address(self):
        from repro.axi import BurstType, Transaction, make_write_request
        store = MemoryStore()
        sim, link, memory = make_system(store=store)
        txn = Transaction("write", "m", 0x300, 3, 16,
                          burst=BurstType.FIXED)
        link.aw.push(make_write_request(txn, 0))
        for index in range(3):
            link.w.push(WriteBeat(last=index == 2,
                                  data=bytes([index + 1]) * 16))
        sim.run(60)
        # last beat wins at the fixed address; neighbours untouched
        assert store.read(0x300, 16) == b"\x03" * 16
        assert store.read(0x310, 16) == bytes(16)
