"""Unit and property tests for the sparse backing store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memory import MemoryStore


class TestBasics:
    def test_unwritten_reads_zero(self):
        store = MemoryStore()
        assert store.read(0x1234, 8) == bytes(8)

    def test_round_trip(self):
        store = MemoryStore()
        store.write(0x100, b"hello world")
        assert store.read(0x100, 11) == b"hello world"

    def test_partial_overwrite(self):
        store = MemoryStore()
        store.write(0x0, b"aaaaaaaa")
        store.write(0x2, b"bb")
        assert store.read(0x0, 8) == b"aabbaaaa"

    def test_page_boundary_crossing(self):
        store = MemoryStore()
        data = bytes(range(64)) * 2
        store.write(4096 - 64, data)
        assert store.read(4096 - 64, 128) == data

    def test_multi_page_write(self):
        store = MemoryStore()
        blob = b"x" * 10_000
        store.write(100, blob)
        assert store.read(100, 10_000) == blob

    def test_sparse_allocation(self):
        store = MemoryStore()
        store.write(1 << 30, b"z")
        assert store.allocated_bytes == 4096


class TestBounds:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            MemoryStore(size=0)

    def test_read_past_end(self):
        store = MemoryStore(size=1024)
        with pytest.raises(ValueError):
            store.read(1020, 8)

    def test_write_past_end(self):
        store = MemoryStore(size=1024)
        with pytest.raises(ValueError):
            store.write(1023, b"ab")

    def test_negative_address(self):
        store = MemoryStore()
        with pytest.raises(ValueError):
            store.read(-1, 4)


class TestPattern:
    def test_fill_pattern_deterministic(self):
        a, b = MemoryStore(), MemoryStore()
        a.fill_pattern(0x40, 512, seed=7)
        b.fill_pattern(0x40, 512, seed=7)
        assert a.read(0x40, 512) == b.read(0x40, 512)

    def test_fill_pattern_seed_changes_content(self):
        store = MemoryStore()
        store.fill_pattern(0, 64, seed=1)
        first = store.read(0, 64)
        store.fill_pattern(0, 64, seed=2)
        assert store.read(0, 64) != first


class TestPropertyBased:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.tuples(
        st.integers(min_value=0, max_value=60_000),
        st.binary(min_size=1, max_size=500)), min_size=1, max_size=30))
    def test_matches_reference_model(self, writes):
        """The sparse store must behave like one flat bytearray."""
        store = MemoryStore(size=1 << 17)
        reference = bytearray(1 << 17)
        for address, data in writes:
            store.write(address, data)
            reference[address:address + len(data)] = data
        for address, data in writes:
            count = len(data) + 16
            count = min(count, (1 << 17) - address)
            assert store.read(address, count) == bytes(
                reference[address:address + count])
