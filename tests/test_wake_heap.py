"""Unit tests for the lazily-invalidated wake-event heap.

The :class:`~repro.sim.wakeheap.WakeHeap` is the fast kernel path's only
source of frozen-span horizons, so its ordering contract — no genuine
wake event is ever lost, spurious wakes are merely harmless — is pinned
here at the data-structure level, plus one kernel-level regression for
the stale-hint hazard: a hint that moves *earlier* after an external
event must supersede the already-queued later entry.
"""

import pytest

from repro.sim import Component, Simulator
from repro.sim.wakeheap import WakeHeap


class TestPushEliding:
    def test_first_push_inserts(self):
        heap = WakeHeap()
        assert heap.push("a", 10) is True
        assert len(heap) == 1 and bool(heap)

    def test_later_or_equal_push_is_elided(self):
        heap = WakeHeap()
        heap.push("a", 10)
        assert heap.push("a", 10) is False
        assert heap.push("a", 50) is False
        assert len(heap) == 1
        assert heap.elided == 2

    def test_earlier_push_supersedes_live_entry(self):
        # the stale-hint hazard: an entry at 100 must not delay a wake
        # that an external event has moved to 40
        heap = WakeHeap()
        heap.push("a", 100)
        assert heap.push("a", 40) is True
        assert heap.peek_cycle() == 40
        assert heap.pop_due(40) == ["a"]
        # the superseded entry at 100 is now stale and must NOT fire
        assert heap.pop_due(100) == []
        assert heap.stale_drops == 1

    def test_subjects_never_compared(self):
        # same cycle, unorderable subjects: the seq tiebreaker decides
        heap = WakeHeap()
        heap.push(object(), 5)
        heap.push(object(), 5)
        assert len(heap.pop_due(5)) == 2


class TestPopAndPeek:
    def test_pop_due_returns_only_due_entries_in_order(self):
        heap = WakeHeap()
        heap.push("late", 30)
        heap.push("early", 10)
        heap.push("mid", 20)
        assert heap.pop_due(20) == ["early", "mid"]
        assert heap.peek_cycle() == 30

    def test_pop_due_drops_stale_entries(self):
        heap = WakeHeap()
        heap.push("a", 10)
        heap.invalidate("a")
        assert heap.pop_due(10) == []
        assert heap.stale_drops == 1

    def test_peek_skips_stale_heads(self):
        heap = WakeHeap()
        heap.push("a", 10)
        heap.push("b", 20)
        heap.invalidate("a")
        assert heap.peek_cycle() == 20

    def test_peek_empty_is_infinite(self):
        assert WakeHeap().peek_cycle() == float("inf")

    def test_resubscribe_after_pop(self):
        # a popped subject re-schedules itself with fresh information
        heap = WakeHeap()
        heap.push("a", 10)
        assert heap.pop_due(10) == ["a"]
        assert heap.push("a", 15) is True
        assert heap.pop_due(15) == ["a"]

    def test_clear_forgets_everything(self):
        heap = WakeHeap()
        heap.push("a", 10)
        heap.clear()
        assert not heap and heap.peek_cycle() == float("inf")
        # and the side table was dropped too: a later push re-inserts
        assert heap.push("a", 99) is True


class RetimableTimer(Component):
    """Fires once at ``due``; the deadline can be moved mid-run.

    ``retime`` models an external event (register write, hypervisor
    decision) that changes the component's internal schedule without any
    channel activity — the documented protocol is to call
    :meth:`Simulator.wake` after such a silent mutation.
    """

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.due = None
        self.fired = []

    def tick(self, cycle):
        if self.due is not None and cycle >= self.due:
            self.fired.append(cycle)
            self.due = None

    def is_quiescent(self, cycle):
        return self.due is None or cycle < self.due

    def next_event_cycle(self, cycle):
        return self.due

    def wake_channels(self):
        # no channels: only the timer hint (or a global wake) ends the
        # quiescence, which is exactly what makes the timer sleepable
        return []

    def retime(self, due):
        self.due = due
        self.sim.wake()


class BusyUntil(Component):
    """Non-quiescent (but otherwise inert) until a fixed cycle.

    Keeps the kernel polling instead of freezing, so sleep-eligible
    neighbours actually accumulate their quiet streak and go onto the
    wake heap rather than being covered by awake-hint horizons.
    """

    def __init__(self, sim, name, until):
        super().__init__(sim, name)
        self.until = until

    def tick(self, cycle):
        pass

    def is_quiescent(self, cycle):
        return cycle >= self.until


class TestStaleHintRegression:
    """A sleeping component's queued hint moves earlier: the kernel must
    wake it at the *new* cycle, not the stale one."""

    def _run(self, fast):
        sim = Simulator("retime", fast=fast)
        timer = RetimableTimer(sim, "timer")
        BusyUntil(sim, "busy", until=200)
        timer.due = 5_000
        sim.run(1_000)           # long enough to sleep on the 5000 hint
        timer.retime(1_500)      # external event moves the wake EARLIER
        sim.run(2_000)           # window ends long before the stale 5000
        return timer.fired, sim.now

    def test_fast_path_honours_earlier_hint(self):
        fired, now = self._run(fast=True)
        assert fired == [1_500]
        assert now == 3_000

    def test_matches_reference(self):
        assert self._run(fast=False) == self._run(fast=True)

    def test_fast_path_actually_slept_on_the_stale_hint(self):
        # the regression is only meaningful if the first window really
        # put the timer to sleep with the 5000-cycle hint queued
        sim = Simulator("retime", fast=True)
        timer = RetimableTimer(sim, "timer")
        BusyUntil(sim, "busy", until=200)
        timer.due = 5_000
        sim.run(1_000)
        assert sim.skip_stats.cycles_frozen > 0
        assert sim.skip_stats.heap_pushes >= 1
        timer.retime(1_500)
        sim.run(2_000)
        assert timer.fired == [1_500]


@pytest.mark.parametrize("fast", (False, True))
def test_retimed_later_hint_is_also_safe(fast):
    # moving a deadline LATER leaves a stale earlier entry in the heap;
    # the resulting early wake is spurious but harmless
    sim = Simulator("retime", fast=fast)
    timer = RetimableTimer(sim, "timer")
    timer.due = 1_500
    sim.run(1_000)
    timer.retime(2_500)
    sim.run(2_000)
    assert timer.fired == [2_500]
    assert sim.now == 3_000
