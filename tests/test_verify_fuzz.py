"""Randomized fault-campaign fuzzing (the `fuzz` marker).

Each test draws complete scenarios — topology family, port count,
per-port workloads, watchdog programming, and at most one fault program —
and runs the full oracle stack on every draw: kernel equivalence,
liveness, AXI protocol monitors, and (for single-rogue scenarios) the
analytic containment bound against the fault-free baseline.

Excluded from the tier-1 run by the default ``-m 'not slow and not
fuzz'`` addopts; the CI ``fault-fuzz`` job runs them under the
derandomized ``ci`` hypothesis profile (3 campaigns x 70 examples), and
``HYPOTHESIS_PROFILE=nightly`` deepens the search to 400 examples each.
A falsified draw is persisted by ``check_scenario`` as a
``falsified-*.json`` artifact for triage and corpus promotion.
"""

import pytest
from hypothesis import given

from repro.verify import check_scenario
from repro.verify.strategies import scenarios, tenanted_scenarios

pytestmark = pytest.mark.fuzz


@given(scenario=scenarios(families=("flat", "cascade")))
def test_in_order_families(scenario):
    """Flat and cascaded fabrics over the in-order DRAM model — the only
    families where memory-fault programs (dead/freeze/stall/error) are
    drawn alongside rogue masters."""
    check_scenario(scenario)


@given(scenario=scenarios(families=("ooo", "multiport")))
def test_advanced_memory_families(scenario):
    """The out-of-order controller behind the in-order adapter, and the
    dual-HyperConnect multi-port memory subsystem."""
    check_scenario(scenario)


@given(scenario=scenarios())
def test_all_families_mixed(scenario):
    """The full cross-product in one pool, so shrinking can move between
    families while minimizing a counterexample."""
    check_scenario(scenario)


@given(scenario=tenanted_scenarios())
def test_tenanted_isolation(scenario):
    """Multi-domain tenant draws: disjoint stage-2 grants, any subset of
    tenants rogue at once (wild-address or hung), and the isolation
    oracle holding alongside the rest of the stack."""
    check_scenario(scenario)
