"""Unit tests for the AxiPipe / FPGA-PS port models."""

from repro.axi import (
    AxiLink,
    DataBeat,
    Transaction,
    WriteBeat,
    make_read_request,
)
from repro.memory import AxiPipe, FpgaPsPort
from repro.sim import Simulator


def test_pipe_forwards_all_five_channels():
    sim = Simulator("pipe")
    up = AxiLink(sim, "up")
    down = AxiLink(sim, "down")
    AxiPipe(sim, "pipe", up, down)
    txn = Transaction("read", "m", 0, 1, 16)
    up.ar.push(make_read_request(txn, 0))
    up.aw.push(make_read_request(txn, 0))
    up.w.push(WriteBeat(last=True))
    down.r.push(DataBeat(last=True))
    down.b.push(DataBeat(last=True))
    sim.run(5)
    assert down.ar.can_pop()
    assert down.aw.can_pop()
    assert down.w.can_pop()
    assert up.r.can_pop()
    assert up.b.can_pop()


def test_pipe_adds_one_stage_of_latency():
    sim = Simulator("pipe")
    up = AxiLink(sim, "up")
    down = AxiLink(sim, "down")
    AxiPipe(sim, "pipe", up, down)
    arrivals = []
    down.ar.subscribe_push(lambda cycle, beat: arrivals.append(cycle))
    txn = Transaction("read", "m", 0, 1, 16)
    up.ar.push(make_read_request(txn, 0))   # cycle 0, visible at 1
    sim.run(5)
    assert arrivals == [1]                  # forwarded the cycle it appears


def test_pipe_respects_backpressure():
    sim = Simulator("pipe")
    up = AxiLink(sim, "up", addr_depth=None)
    down = AxiLink(sim, "down", addr_depth=2)
    AxiPipe(sim, "pipe", up, down)
    txn = Transaction("read", "m", 0, 1, 16)
    for _ in range(6):
        up.ar.push(make_read_request(txn, 0))
    sim.run(20)                  # nobody pops downstream
    assert len(down.ar) == 2     # capacity bound respected
    drained = 0
    for _ in range(20):
        if down.ar.can_pop():
            down.ar.pop()
            drained += 1
        sim.step()
    assert drained == 6          # nothing lost


def test_fpga_ps_port_is_a_pipe():
    sim = Simulator("pipe")
    fabric = AxiLink(sim, "fabric")
    ps = AxiLink(sim, "ps")
    port = FpgaPsPort(sim, "hp0", fabric, ps)
    assert isinstance(port, AxiPipe)
    txn = Transaction("read", "m", 0, 1, 16)
    fabric.ar.push(make_read_request(txn, 0))
    sim.run(3)
    assert ps.ar.can_pop()
