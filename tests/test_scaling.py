"""Scaling behaviour with more than two ports.

The paper evaluates N = 2; the architecture is defined for any N.  These
tests pin down what must stay invariant as N grows (per-channel
propagation latency — the pipeline depth does not depend on N) and what
must scale gracefully (fairness, reservation composition, interference
bounds)."""

import pytest

from repro.analysis import HyperConnectWcrt
from repro.axi import PropagationProbe
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem


class TestLatencyInvariance:
    @pytest.mark.parametrize("n_ports", [2, 4, 8])
    def test_propagation_independent_of_port_count(self, n_ports):
        soc = SocSystem.build(ZCU102, n_ports=n_ports)
        ar = PropagationProbe(soc.port(n_ports - 1).ar,
                              soc.master_link.ar)
        r = PropagationProbe(soc.master_link.r,
                             soc.port(n_ports - 1).r)
        dma = AxiDma(soc.sim, "dma", soc.port(n_ports - 1))
        dma.enqueue_read(0x0, 256)
        soc.run_until_quiescent()
        assert ar.latency_max == 4
        assert r.latency_max == 2


class TestFairnessAtScale:
    @pytest.mark.parametrize("n_ports", [3, 4, 6])
    def test_symmetric_masters_get_equal_shares(self, n_ports):
        soc = SocSystem.build(ZCU102, n_ports=n_ports)
        masters = [
            GreedyTrafficGenerator(soc.sim, f"g{i}", soc.port(i),
                                   job_bytes=4096, depth=3)
            for i in range(n_ports)
        ]
        soc.sim.run(150_000)
        total = sum(master.bytes_read for master in masters)
        for master in masters:
            assert master.bytes_read / total == pytest.approx(
                1 / n_ports, abs=0.02)

    def test_heterogeneous_bursts_still_fair(self):
        """Equalization keeps 4 masters fair despite 16/64/128/256-beat
        preferences (all capped to the nominal 16)."""
        soc = SocSystem.build(ZCU102, n_ports=4)
        bursts = [16, 64, 128, 256]
        masters = [
            GreedyTrafficGenerator(soc.sim, f"g{i}", soc.port(i),
                                   job_bytes=4096, burst_len=bursts[i],
                                   depth=4)
            for i in range(4)
        ]
        soc.sim.run(200_000)
        total = sum(master.bytes_read for master in masters)
        for master in masters:
            assert master.bytes_read / total == pytest.approx(0.25,
                                                              abs=0.04)

    def test_sub_nominal_bursts_are_transaction_fair_not_byte_fair(self):
        """Equalization caps the maximum burst; a master that
        *voluntarily* issues 1-beat transactions receives one slot per
        round like everyone else — i.e. 1/(16+1) of the bytes, not 1/2.
        This is exactly the semantics of [11] (no aggregation)."""
        soc = SocSystem.build(ZCU102, n_ports=2)
        tiny = GreedyTrafficGenerator(soc.sim, "tiny", soc.port(0),
                                      job_bytes=4096, burst_len=1,
                                      depth=4, max_outstanding=16)
        full = GreedyTrafficGenerator(soc.sim, "full", soc.port(1),
                                      job_bytes=4096, burst_len=16,
                                      depth=4)
        soc.sim.run(150_000)
        byte_share = tiny.bytes_read / (tiny.bytes_read
                                        + full.bytes_read)
        assert byte_share == pytest.approx(1 / 17, abs=0.03)
        # ... but transaction slots are granted 1:1
        grants = soc.driver.issued(0)["read"], soc.driver.issued(1)["read"]
        assert grants[0] == pytest.approx(grants[1], rel=0.15)


class TestReservationComposition:
    def test_three_way_split(self):
        soc = SocSystem.build(ZCU102, n_ports=3, period=2048)
        masters = [
            GreedyTrafficGenerator(soc.sim, f"g{i}", soc.port(i),
                                   job_bytes=4096, depth=4)
            for i in range(3)
        ]
        soc.driver.set_bandwidth_shares({0: 0.6, 1: 0.3, 2: 0.1})
        soc.sim.run(250_000)
        total = sum(master.bytes_read for master in masters)
        shares = [master.bytes_read / total for master in masters]
        assert shares[0] == pytest.approx(0.6, abs=0.04)
        assert shares[1] == pytest.approx(0.3, abs=0.04)
        assert shares[2] == pytest.approx(0.1, abs=0.04)

    def test_reservation_is_a_cap_not_a_priority(self):
        """The mechanism of [10] *limits* each budgeted port; a port's
        guarantee comes from capping the others (which is why the Fig. 5
        configurations always assign the complement Y to the DMA).
        Budgeting only one port of three leaves arbitration round-robin:
        the budgeted port still gets only its RR share."""
        soc = SocSystem.build(ZCU102, n_ports=3, period=2048)
        masters = [
            GreedyTrafficGenerator(soc.sim, f"g{i}", soc.port(i),
                                   job_bytes=4096, depth=4)
            for i in range(3)
        ]
        soc.driver.set_bandwidth_shares({0: 0.5})   # others unlimited
        soc.sim.run(250_000)
        total = sum(master.bytes_read for master in masters)
        assert masters[0].bytes_read / total == pytest.approx(1 / 3,
                                                              abs=0.04)

    def test_guarantee_achieved_by_capping_the_others(self):
        soc = SocSystem.build(ZCU102, n_ports=3, period=2048)
        masters = [
            GreedyTrafficGenerator(soc.sim, f"g{i}", soc.port(i),
                                   job_bytes=4096, depth=4)
            for i in range(3)
        ]
        # cap the two best-effort ports; the reserved port takes the rest
        soc.driver.set_bandwidth_shares({1: 0.25, 2: 0.25})
        soc.sim.run(250_000)
        total = sum(master.bytes_read for master in masters)
        assert masters[0].bytes_read / total == pytest.approx(0.5,
                                                              abs=0.04)
        assert masters[1].bytes_read == pytest.approx(
            masters[2].bytes_read, rel=0.1)


class TestBoundsAtScale:
    def test_wcrt_bound_holds_with_four_interferers(self):
        soc = SocSystem.build(ZCU102, n_ports=5)
        for index in range(1, 5):
            GreedyTrafficGenerator(soc.sim, f"noise{index}",
                                   soc.port(index), job_bytes=65536,
                                   burst_len=256, depth=4)
        soc.sim.run(5000)
        victim = AxiDma(soc.sim, "victim", soc.port(0))
        nbytes = 16 * 256   # 16 equalized transactions
        job = victim.enqueue_read(0x0, nbytes)
        bound = HyperConnectWcrt(5, 16, ZCU102.dram).job_bound_bytes(
            nbytes, 16)
        soc.sim.run(bound + 5000)
        assert job.completed is not None
        assert job.latency <= bound
