"""Live tenant revocation and re-granting under traffic.

The churn tentpole's verification surface:

* churn :class:`Scenario` validation and serialization (churn is pure
  data, omitted from untenanted/churn-free JSON so pinned corpus
  digests survive);
* the :class:`RevocationController` state machine on a live system —
  quiesce -> drain -> retarget -> coalesce -> re-grant, with healthy
  neighbours running throughout;
* the stale-window isolation oracle: it passes on honest runs, rejects
  tampered ones, and the liveness oracle defers the evicted tenant to
  it;
* the acceptance paths: a revoke-while-mid-burst churn storm proven
  bit-identical on all four kernel paths, with worker-count-independent
  campaign digests;
* the golden audit-ring regression: a scripted revoke/re-grant session
  must reproduce the checked-in transition trail byte-for-byte.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.hypervisor import Criticality, Hypervisor, SystemIntegrator
from repro.ipxact import accelerator_component
from repro.masters import AxiDma
from repro.memory import MemoryStore
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem
from repro.verify import (
    MasterFault,
    OracleViolation,
    PortPlan,
    Scenario,
    check_scenario,
    evaluate_scenario,
    run_campaign,
    run_scenario,
)
from repro.verify.campaign import CampaignConfig
from repro.verify.harness import CHURN_WRITE_BYTES, build_system, \
    churn_pattern, run_system
from repro.verify.oracles import check_liveness, check_stale_window
from repro.verify.paramspace import GRIDS, compile_isolation
from repro.verify.scenario import GRANT_GRANULE, canonical_json

SPAN = 8 * GRANT_GRANULE
GOLDEN_AUDIT = Path(__file__).parent / "data" / "golden_audit_ring.json"


def churn_scenario(n=4, churn=((64, 1, 3),), rogues=(), horizon=10_000,
                   victim_bytes=4096):
    """Tenanted scenario with scripted churn; victims stream one long
    write so the revocation provably lands mid-burst."""
    victims = {v for _, v, _ in churn}
    plans = []
    for index in range(n):
        base = index * SPAN
        if index in victims:
            plans.append(PortPlan(jobs=(("write", base, victim_bytes),)))
        elif index in rogues:
            plans.append(PortPlan(
                jobs=(("read", ((index + 1) % n) * SPAN, 1024),),
                fault=MasterFault(mode="wild_addr")))
        else:
            plans.append(PortPlan(jobs=(("read", base, 256),)))
    return Scenario(family="flat", ports=tuple(plans),
                    grants=tuple((i * SPAN, SPAN) for i in range(n)),
                    horizon=horizon, settle=512, churn=tuple(churn))


class TestChurnScenarioModel:
    def test_round_trips_through_json(self):
        scenario = churn_scenario(churn=((64, 1, 3), (200, 2, -1)))
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert again.churn == ((64, 1, 3), (200, 2, -1))

    def test_churn_free_json_is_byte_compatible(self):
        scenario = churn_scenario()
        stripped = dataclasses.replace(scenario, churn=None)
        assert '"churn"' not in stripped.to_json()

    def test_churn_requires_grants(self):
        with pytest.raises(ValueError):
            Scenario(family="flat",
                     ports=(PortPlan(jobs=(("read", 0, 256),)),
                            PortPlan(jobs=(("read", SPAN, 256),))),
                     churn=((64, 0, 1),))

    def test_rogue_victim_rejected(self):
        plans = [PortPlan(jobs=(("read", i * SPAN, 256),))
                 for i in range(4)]
        plans[1] = PortPlan(jobs=(("read", 2 * SPAN, 1024),),
                            fault=MasterFault(mode="wild_addr"))
        with pytest.raises(ValueError, match="rogue"):
            # revoking a faulted tenant is the recovery ladder's job
            Scenario(family="flat", ports=tuple(plans),
                     grants=tuple((i * SPAN, SPAN) for i in range(4)),
                     horizon=10_000, churn=((64, 1, 3),))

    def test_victim_and_beneficiary_constraints(self):
        with pytest.raises(ValueError):        # beneficiary == victim
            churn_scenario(churn=((64, 1, 1),))
        with pytest.raises(ValueError):        # one op per victim
            churn_scenario(churn=((64, 1, 3), (80, 1, -1)))
        with pytest.raises(ValueError):        # victim is also granted to
            churn_scenario(churn=((64, 1, 2), (80, 2, -1)))
        with pytest.raises(ValueError):        # cycle outside horizon
            churn_scenario(churn=((20_000, 1, 3),))

    def test_baseline_keeps_the_churn_schedule(self):
        scenario = churn_scenario(rogues=(0,))
        baseline = scenario.baseline()
        assert baseline.churn == scenario.churn
        assert not baseline.rogue_indices

    def test_involved_properties(self):
        scenario = churn_scenario(churn=((64, 1, 3), (200, 2, -1)))
        assert scenario.churn_victims == (1, 2)
        assert scenario.churn_beneficiaries == (3,)
        assert scenario.churn_involved == (1, 2, 3)


def booted(n_ports=2, fast=False):
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048, fast=fast)
    hypervisor = Hypervisor(soc.interconnect)
    hypervisor.create_domain("crit", Criticality.HIGH)
    hypervisor.create_domain("best", Criticality.LOW)
    integrator = SystemIntegrator(ZCU102)
    integrator.add_accelerator(accelerator_component("dnn"), "crit")
    integrator.add_accelerator(accelerator_component("dma"), "best")
    hypervisor.boot(integrator.integrate())
    hypervisor.attach_memory(MemoryStore(size=1 << 24))
    return soc, hypervisor


class TestRevocationController:
    def test_revoke_of_unheld_region_rejected(self):
        __, hypervisor = booted()
        region = hypervisor.grant_memory("crit", 0x8000)
        with pytest.raises(ConfigurationError):
            hypervisor.revoke_memory("best", region)

    def test_regrant_to_self_rejected(self):
        __, hypervisor = booted()
        region = hypervisor.grant_memory("crit", 0x8000)
        with pytest.raises(ConfigurationError):
            hypervisor.revoke_memory("crit", region, regrant_to="crit")

    def test_past_start_cycle_rejected(self):
        soc, hypervisor = booted()
        region = hypervisor.grant_memory("crit", 0x8000)
        soc.sim.run(100)
        with pytest.raises(ConfigurationError):
            hypervisor.revoke_memory("crit", region, at=50)

    def test_second_in_flight_order_for_same_domain_rejected(self):
        __, hypervisor = booted()
        a = hypervisor.grant_memory("crit", 0x8000)
        b = hypervisor.grant_memory("crit", 0x8000)
        hypervisor.revoke_memory("crit", a, at=1000)
        with pytest.raises(ConfigurationError):
            hypervisor.revoke_memory("crit", b, at=1000)

    @pytest.mark.parametrize("fast", [False, True],
                             ids=["reference", "fast"])
    def test_mid_burst_revocation_drains_and_retires(self, fast):
        soc, hypervisor = booted(fast=fast)
        allocator = hypervisor.allocator
        region = hypervisor.grant_memory("crit", 0x8000)
        port = hypervisor.domain("crit").ports[0]
        dma = AxiDma(soc.sim, "dma", soc.port(port))
        job = dma.enqueue_write(region.base, 8192)
        soc.sim.run(40)
        supervisor = soc.interconnect.supervisors[port]
        assert not supervisor.drained   # provably mid-burst
        order = hypervisor.revoke_memory("crit", region)
        soc.run_until_quiescent()
        assert order.state == "committed"
        assert order.quiesce_cycle is not None
        assert order.commit_cycle >= order.quiesce_cycle
        # drained via synthesized DECERR, surfaced at the engine
        stats = supervisor.fault_stats
        assert stats.synth_b_beats + stats.synth_r_beats > 0
        assert dma.error_responses > 0
        # every accepted beat is answered; the job's unissued residue
        # stays queued behind the retired port and never deadlocks
        assert dma.outstanding == 0
        assert job.completed is None
        # window, grant, and backing are gone; the block is reusable
        assert hypervisor.stage2("crit").window_for_host(region.base) \
            is None
        assert region not in hypervisor.domain("crit").regions
        assert allocator.allocated_bytes == 0
        # grantless domain: the port is retired, not silently unfiltered
        assert not soc.driver.is_coupled(port)
        assert port in hypervisor.quarantined
        assert soc.driver.region_filter(port) is None
        assert soc.driver.region_epoch(port) >= 2
        # a planned transition is not a fault: no trip was counted
        assert stats.watchdog_trips == 0
        assert stats.protocol_trips == 0
        assert supervisor.revocations == 1

    def test_victim_with_remaining_grants_recouples(self):
        soc, hypervisor = booted()
        keep = hypervisor.grant_memory("crit", 0x8000)
        drop = hypervisor.grant_memory("crit", 0x8000)
        port = hypervisor.domain("crit").ports[0]
        dma = AxiDma(soc.sim, "dma", soc.port(port))
        # a single burst, fully in flight at revocation: the drain
        # answers it whole, so no residue re-issues after recouple
        dma.enqueue_write(drop.base, 256)
        soc.sim.run(6)
        assert not soc.interconnect.supervisors[port].drained
        hypervisor.revoke_memory("crit", drop)
        soc.run_until_quiescent()
        # the retargeted filter confines the port, so it returns
        assert soc.driver.is_coupled(port)
        assert port not in hypervisor.quarantined
        assert soc.driver.region_filter(port) == {"base": keep.base,
                                                  "size": keep.size}
        # and the port is live: a job in the kept grant still completes
        job = dma.enqueue_read(keep.base, 1024)
        soc.run_until_quiescent()
        assert job.completed is not None
        assert hypervisor.stage2("crit").window_for_host(keep.base) \
            is not None

    def test_residual_out_of_grant_traffic_is_refiltered(self):
        # a multi-burst job into the revoked range keeps re-issuing
        # after the recouple — the retargeted filter must contain it
        # like any other out-of-grant master
        soc, hypervisor = booted()
        hypervisor.grant_memory("crit", 0x8000)
        drop = hypervisor.grant_memory("crit", 0x8000)
        port = hypervisor.domain("crit").ports[0]
        dma = AxiDma(soc.sim, "dma", soc.port(port))
        dma.enqueue_write(drop.base, 4096)
        soc.sim.run(40)
        hypervisor.revoke_memory("crit", drop)
        soc.run_until_quiescent()
        supervisor = soc.interconnect.supervisors[port]
        assert supervisor.fault_stats.protocol_trips >= 1
        assert not soc.driver.is_coupled(port)

    def test_regrant_hands_the_range_to_the_second_domain(self):
        soc, hypervisor = booted()
        region = hypervisor.grant_memory("crit", 0x8000)
        base, size = region.base, region.size
        store = hypervisor.store
        store.write(base, b"\xAA" * 64)   # the victim's residue
        commits = []
        hypervisor.revoke_memory(
            "crit", region, regrant_to="best",
            on_commit=lambda cycle, order: commits.append(cycle))
        soc.run_until_quiescent()
        assert len(commits) == 1
        # the same physical range now belongs to "best" ...
        best = hypervisor.domain("best")
        assert any(r.base == base and r.size == size
                   for r in best.regions)
        assert hypervisor.stage2("best").window_for_host(base) is not None
        # ... scrubbed: the old tenant's bytes are unobservable
        assert store.read(base, 64) == bytes(64)
        # and the beneficiary's data plane covers it
        port = best.ports[0]
        grant = soc.driver.region_filter(port)
        assert grant["base"] <= base
        assert grant["base"] + grant["size"] >= base + size

    def test_idle_grant_revocation_commits_immediately(self):
        soc, hypervisor = booted()
        region = hypervisor.grant_memory("crit", 0x8000)
        order = hypervisor.revoke_memory("crit", region)
        soc.sim.run(4)
        assert order.state == "committed"
        assert order.commit_cycle == order.quiesce_cycle
        supervisor = \
            soc.interconnect.supervisors[hypervisor.domain("crit").ports[0]]
        assert supervisor.fault_stats.synth_b_beats == 0


class TestStaleWindowOracle:
    def test_honest_run_passes_all_oracles(self):
        evaluate_scenario(churn_scenario(rogues=(0,)))

    def test_tampered_stale_window_is_rejected(self):
        scenario = churn_scenario()
        result = run_scenario(scenario, fast=False)
        churnfree = run_scenario(
            dataclasses.replace(scenario, churn=None), fast=False)
        tampered = dict(result.churn_probes[0])
        tampered["victim_window"] = True   # the stale window survived
        bad = dataclasses.replace(result, churn_probes=(tampered,))
        with pytest.raises(OracleViolation, match="stale"):
            check_stale_window(scenario, bad, churnfree)

    def test_tampered_store_digest_is_rejected(self):
        scenario = churn_scenario()
        result = run_scenario(scenario, fast=False)
        churnfree = run_scenario(
            dataclasses.replace(scenario, churn=None), fast=False)
        tampered = dict(result.churn_probes[0])
        tampered["store_digest"] = "0" * 64   # someone else's bytes
        bad = dataclasses.replace(result, churn_probes=(tampered,))
        with pytest.raises(OracleViolation, match="digest"):
            check_stale_window(scenario, bad, churnfree)

    def test_liveness_defers_the_evicted_tenant(self):
        # the victim ends the run with DECERR'd, unfinished jobs —
        # liveness must not flag what the stale-window oracle owns
        scenario = churn_scenario()
        result = run_scenario(scenario, fast=False)
        assert result.engines[1]["error_responses"] > 0
        check_liveness(scenario, result)

    def test_beneficiary_reuses_the_range_with_real_bytes(self):
        scenario = churn_scenario()
        system = build_system(scenario, fast=False)
        result = run_system(system)
        probe = result.churn_probes[0]
        nbytes = min(CHURN_WRITE_BYTES, probe["size"])
        assert system.store.read(probe["base"], nbytes) == \
            churn_pattern(3, nbytes)


class TestChurnGrid:
    def test_grid_is_registered_and_compiles(self):
        scenarios = GRIDS["churn"].scenarios(mode="pairwise")
        assert scenarios
        assert all(s.churn is not None for s in scenarios)

    def test_none_rows_compile_byte_identically_to_legacy(self):
        legacy = {"n_domains": 8, "n_faulted": 2, "mix": "mixed",
                  "seed": 3, "job_bytes": 512}
        assert compile_isolation(dict(legacy)).to_json() == \
            compile_isolation({**legacy, "churn": "none"}).to_json()

    def test_pure_churn_rows_have_no_rogues(self):
        scenario = compile_isolation(
            {"n_domains": 4, "n_faulted": 0, "churn": "regrant",
             "churn_cycle": 64})
        assert not scenario.rogue_indices
        assert scenario.churn is not None


class TestAcceptance:
    def test_four_path_churn_storm(self, tmp_path, monkeypatch):
        """Revoke-while-mid-burst under a wild rogue, bit-identical on
        reference, fast, threads, and processes kernels."""
        monkeypatch.setenv("VERIFY_ARTIFACT_DIR", str(tmp_path))
        scenario = compile_isolation(
            {"n_domains": 6, "n_faulted": 1, "mix": "wild",
             "churn": "regrant", "churn_cycle": 64, "seed": 3})
        result = check_scenario(scenario, parallel=2,
                                parallel_backends=("threads", "processes"))
        assert len(result.fingerprint) == 5   # churn probes are pinned
        assert result.churn_probes[0]["victim_synth_beats"] > 0

    def test_worker_count_independent_campaign_digest(self):
        scenarios = [
            compile_isolation({"n_domains": 4, "n_faulted": 1,
                               "mix": "wild", "churn": "revoke",
                               "churn_cycle": 64, "seed": 3}),
            compile_isolation({"n_domains": 4, "n_faulted": 0,
                               "mix": "wild", "churn": "regrant",
                               "churn_cycle": 32, "seed": 11}),
        ]
        config = CampaignConfig(kernel_parallel=2)
        inline = run_campaign(scenarios, workers=0, config=config)
        forked = run_campaign(scenarios, workers=2, config=config)
        assert inline.ok, inline.counts
        assert inline.digest == forked.digest


class TestGoldenAuditRing:
    """Satellite: the access-control transition trail is regression-
    pinned — a scripted revoke/re-grant session must reproduce the
    checked-in golden trail byte-for-byte."""

    SCENARIO = dict(n=4, churn=((64, 1, 3), (200, 2, -1)))

    def trail(self):
        system = build_system(churn_scenario(**self.SCENARIO), fast=False)
        run_system(system)
        hypervisor = system.hypervisors[0]
        return canonical_json({
            "total_transitions": hypervisor.access.total_transitions,
            "transitions": [t.as_dict()
                            for t in hypervisor.access.transitions],
        }) + "\n"

    def test_trail_matches_the_golden_file(self):
        assert self.trail() == GOLDEN_AUDIT.read_text()

    def test_golden_file_is_well_formed(self):
        data = json.loads(GOLDEN_AUDIT.read_text())
        kinds = [t["kind"] for t in data["transitions"]]
        # 4 boot-time grants, 2 revocations, 1 re-grant
        assert kinds.count("grant") == 5
        assert kinds.count("revoke") == 2
        assert data["total_transitions"] == 7
