"""Unit tests for the phased accelerator and CHaiDNN model."""

import pytest

from repro.masters import (
    GOOGLENET_LAYERS,
    ChaiDnnAccelerator,
    Phase,
    PhasedAccelerator,
    googlenet_total_macs,
    googlenet_total_weight_bytes,
)
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem


class TestPhase:
    def test_invalid_kind(self):
        with pytest.raises(ConfigurationError):
            Phase("sleep", cycles=10)

    def test_compute_needs_cycles(self):
        with pytest.raises(ConfigurationError):
            Phase("compute", cycles=0)

    def test_memory_needs_bytes(self):
        with pytest.raises(ConfigurationError):
            Phase("read", nbytes=0)


class TestPhasedAccelerator:
    def phases(self):
        return [
            Phase("read", nbytes=256, address=0x1000),
            Phase("compute", cycles=100),
            Phase("write", nbytes=128, address=0x9000),
        ]

    def test_idle_until_started(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = PhasedAccelerator(soc.sim, "acc", soc.port(0),
                                  self.phases(), frames=1)
        soc.sim.run(2000)
        assert accel.frames_completed == 0
        assert accel.bytes_read == 0

    def test_completes_requested_frames(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = PhasedAccelerator(soc.sim, "acc", soc.port(0),
                                  self.phases(), frames=3)
        accel.start()
        soc.sim.run_until(lambda: accel.done, max_cycles=100_000)
        assert accel.frames_completed == 3
        assert accel.done
        assert accel.bytes_read == 3 * 256
        assert accel.bytes_written == 3 * 128

    def test_frame_includes_compute_time(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = PhasedAccelerator(soc.sim, "acc", soc.port(0),
                                  self.phases(), frames=1)
        accel.start()
        soc.sim.run_until(lambda: accel.done, max_cycles=100_000)
        assert accel.frame_latency.minimum >= 100  # at least the compute

    def test_frame_callback(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = PhasedAccelerator(soc.sim, "acc", soc.port(0),
                                  self.phases(), frames=2)
        frames = []
        accel.on_frame_complete(lambda index, cycle: frames.append(index))
        accel.start()
        soc.sim.run_until(lambda: accel.done, max_cycles=100_000)
        assert frames == [1, 2]

    def test_runs_forever_without_frame_target(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = PhasedAccelerator(soc.sim, "acc", soc.port(0),
                                  self.phases())
        accel.start()
        soc.sim.run(60_000)
        assert accel.frames_completed > 5
        assert not accel.done

    def test_empty_phases_rejected(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            PhasedAccelerator(soc.sim, "acc", soc.port(0), [])


class TestGoogleNetTable:
    def test_totals_in_published_ballpark(self):
        # GoogleNet: ~1.5-1.6 G MACs, ~6-7 MB of INT8 weights
        assert 1.0e9 < googlenet_total_macs() < 2.5e9
        assert 5e6 < googlenet_total_weight_bytes() < 8e6

    def test_layer_count(self):
        assert len(GOOGLENET_LAYERS) == 12


class TestChaiDnn:
    def test_phase_structure(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0), scale=0.05)
        kinds = [phase.kind for phase in accel.phases]
        # per layer: weights read, ifmap read, compute, ofmap write
        assert kinds[:4] == ["read", "read", "compute", "write"]
        assert len(accel.phases) == 4 * len(GOOGLENET_LAYERS)

    def test_scaling_reduces_traffic_and_compute(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        full = ChaiDnnAccelerator(soc.sim, "dnn1", soc.port(0), scale=1.0)
        tiny = ChaiDnnAccelerator(soc.sim, "dnn2", soc.port(1), scale=0.1)
        assert tiny.traffic_bytes_per_frame() < full.traffic_bytes_per_frame()
        assert (tiny.compute_cycles_per_frame()
                < full.compute_cycles_per_frame())

    def test_invalid_scale(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0), scale=0.0)
        with pytest.raises(ConfigurationError):
            ChaiDnnAccelerator(soc.sim, "dnn2", soc.port(0), scale=1.5)

    def test_processes_frames(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0),
                                   scale=0.02, frames=2)
        accel.start()
        soc.sim.run_until(lambda: accel.done, max_cycles=2_000_000)
        assert accel.frames_completed == 2
        assert accel.fps > 0

    def test_traffic_accounting_matches_run(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0),
                                   scale=0.02, frames=1)
        accel.start()
        soc.sim.run_until(lambda: accel.done, max_cycles=2_000_000)
        moved = accel.bytes_read + accel.bytes_written
        assert moved == accel.traffic_bytes_per_frame()

    def test_weights_at_distinct_addresses(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        accel = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0), scale=0.05)
        weight_addresses = [phase.address for phase in accel.phases
                            if phase.label.endswith("weights")]
        assert len(set(weight_addresses)) == len(weight_addresses)
