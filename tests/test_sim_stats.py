"""Unit and property tests for the statistics collectors."""

import statistics

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Histogram, OnlineStats, RateCounter


class TestOnlineStats:
    def test_empty(self):
        stats = OnlineStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.minimum is None and stats.maximum is None

    def test_single_sample(self):
        stats = OnlineStats()
        stats.add(42.0)
        assert stats.count == 1
        assert stats.mean == 42.0
        assert stats.minimum == stats.maximum == 42.0
        assert stats.stddev == 0.0

    def test_known_values(self):
        stats = OnlineStats()
        for value in (2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0):
            stats.add(value)
        assert stats.mean == pytest.approx(5.0)
        assert stats.stddev == pytest.approx(2.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=200))
    def test_matches_statistics_module(self, values):
        stats = OnlineStats()
        for value in values:
            stats.add(value)
        assert stats.mean == pytest.approx(statistics.fmean(values),
                                           rel=1e-9, abs=1e-6)
        assert stats.variance == pytest.approx(
            statistics.pvariance(values), rel=1e-6, abs=1e-6)
        assert stats.minimum == min(values)
        assert stats.maximum == max(values)

    @given(st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1,
                    max_size=50),
           st.lists(st.floats(min_value=-1e5, max_value=1e5), min_size=1,
                    max_size=50))
    def test_merge_equals_batch(self, left, right):
        merged = OnlineStats()
        for value in left:
            merged.add(value)
        other = OnlineStats()
        for value in right:
            other.add(value)
        merged.merge(other)
        batch = OnlineStats()
        for value in left + right:
            batch.add(value)
        assert merged.count == batch.count
        assert merged.mean == pytest.approx(batch.mean, rel=1e-9, abs=1e-6)
        assert merged.variance == pytest.approx(batch.variance, rel=1e-6,
                                                abs=1e-5)

    def test_merge_into_empty(self):
        empty = OnlineStats()
        other = OnlineStats()
        other.add(3.0)
        empty.merge(other)
        assert empty.count == 1 and empty.mean == 3.0

    def test_as_dict(self):
        stats = OnlineStats()
        stats.add(1.0)
        stats.add(3.0)
        summary = stats.as_dict()
        assert summary["count"] == 2
        assert summary["min"] == 1.0 and summary["max"] == 3.0
        assert summary["mean"] == 2.0


class TestHistogram:
    def test_binning(self):
        histogram = Histogram(bin_width=10)
        for value in (0, 5, 9, 10, 25):
            histogram.add(value)
        assert histogram.bins() == [(0, 3), (10, 1), (20, 1)]

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            Histogram(bin_width=0)

    def test_percentile(self):
        histogram = Histogram(bin_width=1)
        for value in range(100):
            histogram.add(value)
        assert histogram.percentile(0.5) == pytest.approx(49, abs=1)
        assert histogram.percentile(1.0) == 99

    def test_percentile_bounds(self):
        histogram = Histogram()
        with pytest.raises(ValueError):
            histogram.percentile(1.5)
        assert histogram.percentile(0.5) == 0.0  # empty


class TestRateCounter:
    def test_rate_over_window(self):
        counter = RateCounter(clock_hz=100.0)
        for cycle in (10, 20, 30, 40):
            counter.record(cycle)
        # 4 events by cycle 40 at 100 Hz -> 10 events/s
        assert counter.rate() == pytest.approx(10.0)

    def test_explicit_window(self):
        counter = RateCounter(clock_hz=100.0)
        counter.record(5)
        assert counter.rate(window_cycles=50) == pytest.approx(2.0)

    def test_empty_rate_is_zero(self):
        assert RateCounter(100.0).rate() == 0.0

    def test_invalid_clock(self):
        with pytest.raises(ValueError):
            RateCounter(0.0)
