"""End-to-end shape tests: miniature versions of every paper experiment.

Each test asserts the qualitative result the corresponding figure/table
reports (who wins, by roughly what factor, where parity appears).  The
benchmarks in ``benchmarks/`` run the same harnesses at larger windows.
"""

import pytest

from repro.analysis import improvement
from repro.platforms import ZCU102
from repro.resources import hyperconnect_resources, smartconnect_resources
from repro.system import (
    measure_access_time,
    measure_channel_latencies,
    run_case_study,
)


@pytest.fixture(scope="module")
def latencies():
    return {
        "hc": measure_channel_latencies("hyperconnect"),
        "sc": measure_channel_latencies("smartconnect"),
    }


class TestFig3aChannelLatency:
    def test_hyperconnect_absolute_values(self, latencies):
        hc = latencies["hc"]
        assert (hc.ar, hc.aw, hc.r, hc.w, hc.b) == (4, 4, 2, 2, 2)

    def test_smartconnect_absolute_values(self, latencies):
        sc = latencies["sc"]
        assert (sc.ar, sc.aw, sc.r, sc.w, sc.b) == (12, 12, 11, 3, 2)

    def test_paper_improvement_factors(self, latencies):
        hc, sc = latencies["hc"], latencies["sc"]
        assert improvement(sc.ar, hc.ar) == pytest.approx(0.66, abs=0.02)
        assert improvement(sc.aw, hc.aw) == pytest.approx(0.66, abs=0.02)
        assert improvement(sc.r, hc.r) == pytest.approx(0.82, abs=0.02)
        assert improvement(sc.w, hc.w) == pytest.approx(0.33, abs=0.02)
        assert improvement(sc.b, hc.b) == 0.0

    def test_transaction_level_improvements(self, latencies):
        hc, sc = latencies["hc"], latencies["sc"]
        # paper: 74 % per read transaction, 41 % per write transaction
        assert improvement(sc.read_total,
                           hc.read_total) == pytest.approx(0.74, abs=0.02)
        assert improvement(sc.write_total,
                           hc.write_total) >= 0.40


class TestFig3bAccessTime:
    @pytest.fixture(scope="class")
    def times(self):
        sizes = {"word": 16, "burst16": 256, "kb16": 16384}
        return {
            name: {
                "hc": measure_access_time("hyperconnect", nbytes),
                "sc": measure_access_time("smartconnect", nbytes),
            }
            for name, nbytes in sizes.items()
        }

    def test_single_word_improvement_near_28_percent(self, times):
        gain = improvement(times["word"]["sc"], times["word"]["hc"])
        assert gain == pytest.approx(0.28, abs=0.03)

    def test_16_word_improvement_near_25_percent(self, times):
        gain = improvement(times["burst16"]["sc"], times["burst16"]["hc"])
        assert gain == pytest.approx(0.25, abs=0.04)

    def test_improvement_shrinks_with_size(self, times):
        gains = [improvement(times[name]["sc"], times[name]["hc"])
                 for name in ("word", "burst16", "kb16")]
        assert gains[0] > gains[1] > gains[2]

    def test_throughput_parity_at_16kb(self, times):
        gain = improvement(times["kb16"]["sc"], times["kb16"]["hc"])
        assert abs(gain) < 0.05  # "comparable throughput"


class TestFig4Isolation:
    @pytest.fixture(scope="class")
    def results(self):
        window = 600_000
        return {
            "dnn_hc": run_case_study("hyperconnect", run_dma=False,
                                     window_cycles=window),
            "dnn_sc": run_case_study("smartconnect", run_dma=False,
                                     window_cycles=window),
            "dma_hc": run_case_study("hyperconnect", run_chaidnn=False,
                                     window_cycles=window),
            "dma_sc": run_case_study("smartconnect", run_chaidnn=False,
                                     window_cycles=window),
        }

    def test_chaidnn_no_degradation_with_hyperconnect(self, results):
        hc = results["dnn_hc"].chaidnn_fps
        sc = results["dnn_sc"].chaidnn_fps
        assert hc >= sc * 0.95  # HC at least as good as SC in isolation

    def test_dma_no_degradation_with_hyperconnect(self, results):
        hc = results["dma_hc"].dma_rate
        sc = results["dma_sc"].dma_rate
        assert hc >= sc * 0.95

    def test_rates_are_nonzero(self, results):
        assert results["dnn_hc"].chaidnn_frames > 3
        assert results["dma_hc"].dma_rounds > 3


class TestFig5Contention:
    WINDOW = 600_000

    @pytest.fixture(scope="class")
    def isolation(self):
        return run_case_study("hyperconnect", run_dma=False,
                              window_cycles=self.WINDOW)

    @pytest.fixture(scope="class")
    def smartconnect_contention(self):
        return run_case_study("smartconnect", window_cycles=self.WINDOW)

    def test_smartconnect_starves_chaidnn(self, isolation,
                                          smartconnect_contention):
        # "HA_DMA ... can take most of the bandwidth while HA_CHaiDNN can
        # dispose of just a little portion"
        assert (smartconnect_contention.chaidnn_fps
                < 0.35 * isolation.chaidnn_fps)

    def test_hc_90_10_close_to_isolation(self, isolation):
        result = run_case_study("hyperconnect", shares={0: 0.9, 1: 0.1},
                                window_cycles=self.WINDOW)
        assert result.chaidnn_fps >= 0.85 * isolation.chaidnn_fps

    def test_reservation_monotonic_in_share(self):
        fps = []
        dma = []
        for share in (0.9, 0.5, 0.1):
            result = run_case_study(
                "hyperconnect", shares={0: share, 1: round(1 - share, 2)},
                window_cycles=self.WINDOW)
            fps.append(result.chaidnn_fps)
            dma.append(result.dma_rate)
        assert fps[0] > fps[1] > fps[2]      # CHaiDNN follows its share
        assert dma[0] < dma[1] < dma[2]      # DMA follows the complement

    def test_smartconnect_rejects_shares(self):
        with pytest.raises(ValueError):
            run_case_study("smartconnect", shares={0: 0.9, 1: 0.1},
                           window_cycles=10_000)


class TestTable1Resources:
    def test_paper_numbers_and_ordering(self):
        hc = hyperconnect_resources(2)
        sc = smartconnect_resources(2)
        assert (hc.lut, hc.ff) == (3020, 1289)
        assert (sc.lut, sc.ff) == (3785, 7137)
        assert hc.lut < sc.lut and hc.ff < sc.ff
        assert hc.bram == sc.bram == 0
        assert hc.dsp == sc.dsp == 0

    def test_utilization_below_two_percent(self):
        util = hyperconnect_resources(2).utilization(ZCU102.resources)
        assert util["lut"] < 0.02 and util["ff"] < 0.02
