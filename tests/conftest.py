"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import pytest

from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.system import SocSystem


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator clocked like the ZCU102 PL."""
    return Simulator("test", clock_hz=ZCU102.pl_clock_hz)


@pytest.fixture
def hc_soc() -> SocSystem:
    """A two-port HyperConnect system on the ZCU102 model."""
    return SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2)


@pytest.fixture
def sc_soc() -> SocSystem:
    """A two-port SmartConnect system on the ZCU102 model."""
    return SocSystem.build(ZCU102, interconnect="smartconnect", n_ports=2)


def drain(soc: SocSystem, max_cycles: int = 2_000_000) -> int:
    """Run a system until quiescent; returns elapsed cycles."""
    return soc.run_until_quiescent(max_cycles=max_cycles)
