"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import settings

from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.system import SocSystem

# Hypothesis budget profiles (select via HYPOTHESIS_PROFILE):
#   dev     — local default; stock example counts, no wall-clock deadline
#             (cycle-accurate runs vary too much for per-example deadlines).
#   ci      — the quick fault-fuzz budget: derandomized so the CI seed set
#             is fixed and every run replays the exact same scenarios.
#             70 examples x 3 fuzz campaigns > the 200-scenario floor.
#   nightly — the deep search budget; fresh randomness every night.
settings.register_profile("dev", deadline=None)
settings.register_profile("ci", max_examples=70, deadline=None,
                          derandomize=True)
settings.register_profile("nightly", max_examples=400, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator clocked like the ZCU102 PL."""
    return Simulator("test", clock_hz=ZCU102.pl_clock_hz)


@pytest.fixture
def hc_soc() -> SocSystem:
    """A two-port HyperConnect system on the ZCU102 model."""
    return SocSystem.build(ZCU102, interconnect="hyperconnect", n_ports=2)


@pytest.fixture
def sc_soc() -> SocSystem:
    """A two-port SmartConnect system on the ZCU102 model."""
    return SocSystem.build(ZCU102, interconnect="smartconnect", n_ports=2)


def drain(soc: SocSystem, max_cycles: int = 2_000_000) -> int:
    """Run a system until quiescent; returns elapsed cycles."""
    return soc.run_until_quiescent(max_cycles=max_cycles)
