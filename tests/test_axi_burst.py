"""Unit and property tests for AXI burst address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.axi import (
    BOUNDARY_4KB,
    AxiVersion,
    BurstType,
    beat_addresses,
    crosses_4kb,
    legalize,
    max_legal_length,
    split_burst,
    total_bytes,
)


class TestBeatAddresses:
    def test_incr(self):
        assert beat_addresses(0x100, 4, 8) == [0x100, 0x108, 0x110, 0x118]

    def test_fixed(self):
        assert beat_addresses(0x40, 3, 4, BurstType.FIXED) == [0x40] * 3

    def test_wrap_wraps_at_container(self):
        # 4 beats x 4 bytes = 16-byte container; start mid-container
        addresses = beat_addresses(0x48, 4, 4, BurstType.WRAP)
        assert addresses == [0x48, 0x4C, 0x40, 0x44]

    def test_wrap_unaligned_start_rejected(self):
        with pytest.raises(ValueError):
            beat_addresses(0x41, 4, 4, BurstType.WRAP)

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            beat_addresses(0, 0, 4)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            beat_addresses(0, 1, 3)


class TestBoundary:
    def test_burst_inside_page(self):
        assert not crosses_4kb(0x0, 256, 16)  # exactly fills the page

    def test_burst_crossing_page(self):
        assert crosses_4kb(0xFF0, 2, 16)

    def test_fixed_never_crosses(self):
        assert not crosses_4kb(0xFFF, 16, 16, BurstType.FIXED)

    def test_wrap_never_crosses(self):
        assert not crosses_4kb(0xFC0, 16, 4, BurstType.WRAP)

    def test_max_legal_length_at_page_start(self):
        assert max_legal_length(0x0, 16) == 256

    def test_max_legal_length_near_boundary(self):
        assert max_legal_length(BOUNDARY_4KB - 32, 16) == 2

    def test_max_legal_length_axi3_cap(self):
        assert max_legal_length(0x0, 16, AxiVersion.AXI3) == 16


class TestSplitBurst:
    def test_exact_multiple(self):
        assert split_burst(0x0, 32, 16, 16) == [(0x0, 16), (0x100, 16)]

    def test_remainder(self):
        pieces = split_burst(0x0, 20, 16, 16)
        assert pieces == [(0x0, 16), (0x100, 4)]

    def test_short_burst_untouched(self):
        assert split_burst(0x40, 8, 16, 16) == [(0x40, 8)]

    def test_invalid_nominal(self):
        with pytest.raises(ValueError):
            split_burst(0, 8, 16, 0)

    @given(address=st.integers(min_value=0, max_value=1 << 32).map(
               lambda a: a * 16),
           length=st.integers(min_value=1, max_value=1024),
           nominal=st.integers(min_value=1, max_value=64))
    def test_split_covers_same_beats(self, address, length, nominal):
        """Splitting must preserve the exact set of beat addresses."""
        pieces = split_burst(address, length, 16, nominal)
        original = beat_addresses(address, length, 16)
        recombined = []
        for sub_address, sub_length in pieces:
            assert 1 <= sub_length <= nominal
            recombined.extend(beat_addresses(sub_address, sub_length, 16))
        assert recombined == original

    @given(length=st.integers(min_value=1, max_value=2048),
           nominal=st.integers(min_value=1, max_value=256))
    def test_split_piece_count(self, length, nominal):
        pieces = split_burst(0, length, 16, nominal)
        assert len(pieces) == -(-length // nominal)  # ceil division


class TestLegalize:
    def test_no_split_needed(self):
        assert legalize(0x0, 16, 16) == [(0x0, 16)]

    def test_split_at_4kb(self):
        pieces = legalize(BOUNDARY_4KB - 64, 8, 16)
        # 4 beats to the boundary, then 4 beyond
        assert pieces == [(BOUNDARY_4KB - 64, 4), (BOUNDARY_4KB, 4)]

    def test_axi3_length_cap(self):
        pieces = legalize(0x0, 64, 16, AxiVersion.AXI3)
        assert all(length <= 16 for (_, length) in pieces)

    @given(address=st.integers(min_value=0, max_value=1 << 20).map(
               lambda a: a * 16),
           beats=st.integers(min_value=1, max_value=4096))
    def test_legalized_bursts_are_legal_and_cover(self, address, beats):
        pieces = legalize(address, beats, 16)
        covered = []
        for sub_address, sub_length in pieces:
            assert 1 <= sub_length <= 256
            assert not crosses_4kb(sub_address, sub_length, 16)
            covered.extend(beat_addresses(sub_address, sub_length, 16))
        assert covered == beat_addresses(address, beats, 16)


class TestTotals:
    def test_total_bytes(self):
        assert total_bytes(16, 16) == 256
