"""Tests for the out-of-order platform support (the paper's future work).

System under test: HyperConnect -> InOrderAdapter -> OutOfOrderMemory.
The controller is free to reorder reads for row-buffer locality; the
adapter must restore the in-order contract so that the HyperConnect's
routing information — and therefore every HA — stays correct.
"""

import pytest

from repro.axi import AxiLink, LinkChecker
from repro.hyperconnect import HyperConnect, InOrderAdapter
from repro.masters import AxiDma, AxiMasterEngine, GreedyTrafficGenerator
from repro.memory import DramTiming, MemoryStore, OutOfOrderMemory
from repro.sim import ConfigurationError, Simulator

#: row model on, with a hefty miss penalty so reordering pays off
OOO_TIMING = DramTiming(read_latency=12, write_latency=8, resp_latency=2,
                        row_miss_penalty=24)


def build_ooo_system(with_store=False, n_ports=2, lookahead=8):
    sim = Simulator("ooo", clock_hz=150e6)
    upstream = AxiLink(sim, "up", data_bytes=16)
    downstream = AxiLink(sim, "down", data_bytes=16)
    hc = HyperConnect(sim, "hc", n_ports, upstream)
    adapter = InOrderAdapter(sim, "adapter", upstream, downstream)
    store = MemoryStore() if with_store else None
    memory = OutOfOrderMemory(sim, "mem", downstream, timing=OOO_TIMING,
                              store=store, lookahead=lookahead)
    return sim, hc, adapter, memory, store


def drain(sim, engines, max_cycles=2_000_000):
    sim.run_until(lambda: all(not engine.busy for engine in engines),
                  max_cycles=max_cycles)
    sim.run(64)


class TestOutOfOrderMemory:
    def test_reorders_row_hits_past_misses(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8)
        # alternate two far-apart row regions: A A' B A'' ... the scheduler
        # should batch same-row reads when the head misses
        for index in range(12):
            base = 0x0 if index % 2 == 0 else 0x40_0000
            engine.enqueue_read(base + (index // 2) * 256, 256)
        drain(sim, [engine])
        assert memory.reordered_served > 0

    def test_in_order_memory_never_reorders(self):
        from repro.memory import MemorySubsystem
        sim = Simulator("inorder", clock_hz=150e6)
        link = AxiLink(sim, "l", data_bytes=16)
        hc = HyperConnect(sim, "hc", 1, link)
        memory = MemorySubsystem(sim, "mem", link, timing=OOO_TIMING)
        engine = AxiMasterEngine(sim, "m", hc.port(0))
        for index in range(8):
            engine.enqueue_read(index * 0x10_0000, 256)
        drain(sim, [engine])
        # base class has no reordering machinery at all
        assert not hasattr(memory, "reordered_served")

    def test_writes_never_reordered(self):
        sim, hc, adapter, memory, store = build_ooo_system(with_store=True)
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8)
        # interleave writes to alternating rows; data must land intact
        payloads = []
        for index in range(6):
            payload = bytes(((index * 37 + j) & 0xFF) for j in range(256))
            payloads.append(payload)
            base = (0x0 if index % 2 == 0 else 0x40_0000)
            engine.enqueue_write(base + index * 4096, 256, data=payload)
        drain(sim, [engine])
        for index, payload in enumerate(payloads):
            base = (0x0 if index % 2 == 0 else 0x40_0000)
            assert store.read(base + index * 4096, 256) == payload

    def test_invalid_lookahead(self):
        with pytest.raises(ValueError):
            build_ooo_system(lookahead=0)


class TestInOrderAdapter:
    def test_upstream_sees_in_order_reads(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        checker = LinkChecker(adapter.upstream, strict=False)
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8)
        for index in range(16):
            base = 0x0 if index % 2 == 0 else 0x40_0000
            engine.enqueue_read(base + (index // 2) * 256, 256)
        drain(sim, [engine])
        checker.assert_clean()   # RLAST boundaries in request order
        assert memory.reordered_served > 0          # OoO actually happened
        assert adapter.out_of_order_arrivals > 0    # ... and was absorbed
        assert adapter.idle()

    def test_data_integrity_through_reordering(self):
        sim, hc, adapter, memory, store = build_ooo_system(with_store=True)
        for index in range(16):
            base = 0x0 if index % 2 == 0 else 0x40_0000
            store.fill_pattern(base + (index // 2) * 256, 256,
                               seed=index)
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8,
                                 collect_data=True)
        jobs = []
        for index in range(16):
            base = 0x0 if index % 2 == 0 else 0x40_0000
            jobs.append(engine.enqueue_read(
                base + (index // 2) * 256, 256))
        drain(sim, [engine])
        for index, job in enumerate(jobs):
            base = 0x0 if index % 2 == 0 else 0x40_0000
            expected = store.read(base + (index // 2) * 256, 256)
            assert bytes(job.result) == expected

    def test_two_masters_with_contention(self):
        sim, hc, adapter, memory, store = build_ooo_system(with_store=True)
        store.fill_pattern(0x1000, 4096, seed=1)
        noise = GreedyTrafficGenerator(sim, "noise", hc.port(1),
                                       job_bytes=8192,
                                       window_base=0x40_0000)
        victim = AxiMasterEngine(sim, "victim", hc.port(0),
                                 collect_data=True)
        job = victim.enqueue_read(0x1000, 4096)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=1_000_000)
        assert bytes(job.result) == store.read(0x1000, 4096)

    def test_write_responses_released_in_order(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8)
        jobs = [engine.enqueue_write(0x2000 * index, 512)
                for index in range(6)]
        drain(sim, [engine])
        assert all(job.completed is not None for job in jobs)
        completion = [job.completed for job in jobs]
        assert completion == sorted(completion)

    def test_tiny_buffer_serializes_but_completes(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        adapter.buffer_beats = 16   # one equalized sub-burst at a time
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8)
        jobs = [engine.enqueue_read(0x40_0000 * (index % 2), 1024)
                for index in range(6)]
        drain(sim, [engine])
        assert all(job.completed is not None for job in jobs)

    def test_burst_larger_than_buffer_rejected_loudly(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        adapter.buffer_beats = 8    # below the 16-beat nominal burst
        engine = AxiMasterEngine(sim, "m", hc.port(0))
        engine.enqueue_read(0x0, 256)
        with pytest.raises(ConfigurationError):
            sim.run(100)

    def test_mixed_reads_and_writes(self):
        sim, hc, adapter, memory, store = build_ooo_system(with_store=True)
        engine = AxiMasterEngine(sim, "m", hc.port(0), max_outstanding=8,
                                 collect_data=True)
        payload = bytes(range(256))
        engine.enqueue_write(0x3000, 256, data=payload)
        engine.enqueue_read(0x40_0000, 256)
        engine.enqueue_write(0x5000, 256, data=payload)
        read_back = engine.enqueue_read(0x3000, 256)
        drain(sim, [engine])
        assert bytes(read_back.result) == payload

    def test_invalid_buffer_size(self):
        sim = Simulator("bad")
        up = AxiLink(sim, "u")
        down = AxiLink(sim, "d")
        with pytest.raises(ConfigurationError):
            InOrderAdapter(sim, "a", up, down, buffer_beats=0)

    def test_outstanding_bounded_by_id_space(self):
        sim, hc, adapter, memory, __ = build_ooo_system()
        engine = AxiMasterEngine(sim, "m", hc.port(0),
                                 max_outstanding=8)
        for index in range(16):
            engine.enqueue_read(index * 0x1000, 256)
        peak = [0]

        class Watch:
            pass

        def sample():
            peak[0] = max(peak[0], adapter.outstanding)

        for _ in range(30_000):
            sim.step()
            sample()
            if not engine.busy:
                break
        assert peak[0] <= adapter._ids.capacity
