"""Unit tests for the registered FIFO channel."""

import pytest

from repro.sim import Channel, ChannelError, ConfigurationError, Simulator


def make(sim, latency=1, capacity=4, name="ch"):
    return Channel(sim, name, latency=latency, capacity=capacity)


class TestConstruction:
    def test_zero_latency_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            make(sim, latency=0)

    def test_zero_capacity_rejected(self, sim):
        with pytest.raises(ConfigurationError):
            make(sim, capacity=0)

    def test_unbounded_capacity_allowed(self, sim):
        channel = make(sim, capacity=None)
        for i in range(1000):
            channel.push(i)
        assert channel.can_push()

    def test_duplicate_name_rejected(self, sim):
        make(sim, name="dup")
        with pytest.raises(Exception):
            make(sim, name="dup")


class TestVisibility:
    def test_item_invisible_same_cycle(self, sim):
        channel = make(sim)
        channel.push("x")
        assert not channel.can_pop()

    def test_item_visible_after_latency(self, sim):
        channel = make(sim, latency=3)
        channel.push("x")
        for _ in range(3):
            assert not channel.can_pop()
            sim.step()
        assert channel.can_pop()
        assert channel.pop() == "x"

    def test_fifo_order_preserved(self, sim):
        channel = make(sim, capacity=None)
        for i in range(5):
            channel.push(i)
        sim.step()
        assert channel.drain() == [0, 1, 2, 3, 4]

    def test_front_does_not_remove(self, sim):
        channel = make(sim)
        channel.push("x")
        sim.step()
        assert channel.front() == "x"
        assert channel.can_pop()
        assert channel.pop() == "x"

    def test_items_pushed_across_cycles_become_visible_in_order(self, sim):
        channel = make(sim, latency=2, capacity=None)
        channel.push("a")              # pushed at cycle 0, visible at 2
        sim.step()
        channel.push("b")              # pushed at cycle 1, visible at 3
        sim.step()
        assert channel.pop() == "a"
        assert not channel.can_pop()   # 'b' only at cycle 3
        sim.step()
        assert channel.pop() == "b"


class TestBackpressure:
    def test_push_to_full_raises(self, sim):
        channel = make(sim, capacity=1)
        channel.push("a")
        assert not channel.can_push()
        with pytest.raises(ChannelError):
            channel.push("b")

    def test_pop_frees_space_only_next_cycle(self, sim):
        channel = make(sim, capacity=1)
        channel.push("a")
        sim.step()
        channel.pop()
        # registered-full: the slot frees at the commit, not immediately
        assert not channel.can_push()
        sim.step()
        assert channel.can_push()

    def test_full_throughput_with_capacity_two(self, sim):
        channel = make(sim, latency=1, capacity=2)
        delivered = []
        channel.push(0)
        sim.step()
        for i in range(1, 50):
            if channel.can_pop():
                delivered.append(channel.pop())
            assert channel.can_push()
            channel.push(i)
            sim.step()
        # one item delivered per cycle after the pipeline fill
        assert delivered == list(range(49))

    def test_can_push_multi_count(self, sim):
        channel = make(sim, capacity=3)
        channel.push(1)
        assert channel.can_push(2)
        assert not channel.can_push(3)


class TestMisuse:
    def test_pop_empty_raises(self, sim):
        channel = make(sim)
        with pytest.raises(ChannelError):
            channel.pop()

    def test_front_empty_raises(self, sim):
        channel = make(sim)
        with pytest.raises(ChannelError):
            channel.front()

    def test_pop_before_visibility_raises(self, sim):
        channel = make(sim, latency=5)
        channel.push("x")
        sim.step()
        with pytest.raises(ChannelError):
            channel.pop()


class TestIntrospection:
    def test_counters(self, sim):
        channel = make(sim, capacity=None)
        for i in range(3):
            channel.push(i)
        sim.step()
        channel.pop()
        assert channel.pushed_total == 3
        assert channel.popped_total == 1
        assert len(channel) == 2

    def test_is_idle(self, sim):
        channel = make(sim)
        assert channel.is_idle
        channel.push(1)
        assert not channel.is_idle
        sim.step()
        channel.pop()
        assert channel.is_idle

    def test_clear(self, sim):
        channel = make(sim)
        channel.push(1)
        sim.step()
        channel.push(2)
        channel.clear()
        assert channel.is_idle
        assert not channel.can_pop()

    def test_occupancy_includes_staged_and_popped(self, sim):
        channel = make(sim, capacity=4)
        channel.push(1)
        channel.push(2)
        assert channel.occupancy == 2
        sim.step()
        channel.pop()
        channel.push(3)
        assert channel.occupancy == 3  # 1 queued + 1 popped + 1 staged


class TestAmendStaged:
    """The public hook fault injectors use to rewrite staged payloads."""

    def test_amends_only_the_staged_item(self, sim):
        channel = make(sim)
        committed = ["old"]
        staged = ["old"]
        channel.push(committed)
        sim.step()                      # first item commits
        channel.push(staged)
        assert channel.amend_staged(lambda item: item.__setitem__(0, "new"))
        assert committed == ["old"]     # committed work cannot be amended
        assert staged == ["new"]
        sim.step()
        assert channel.pop() == ["old"]
        assert channel.pop() == ["new"]

    def test_consumer_never_sees_the_unamended_item(self, sim):
        channel = make(sim)
        seen = []
        channel.subscribe_pop(lambda cycle, item: seen.append(list(item)))
        channel.push(["x"])
        channel.amend_staged(lambda item: item.__setitem__(0, "y"))
        sim.step()
        assert channel.pop() == ["y"]
        assert seen == [["y"]]

    def test_returns_false_with_nothing_staged(self, sim):
        channel = make(sim)
        assert not channel.amend_staged(lambda item: None)
        channel.push(["x"])
        sim.step()                      # staged -> committed
        assert not channel.amend_staged(lambda item: None)


class TestListeners:
    def test_push_listener_sees_cycle_and_item(self, sim):
        channel = make(sim)
        seen = []
        channel.subscribe_push(lambda cycle, item: seen.append((cycle, item)))
        sim.step()
        channel.push("x")
        assert seen == [(1, "x")]

    def test_pop_listener(self, sim):
        channel = make(sim)
        seen = []
        channel.subscribe_pop(lambda cycle, item: seen.append((cycle, item)))
        channel.push("x")
        sim.step()
        channel.pop()
        assert seen == [(1, "x")]
