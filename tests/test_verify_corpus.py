"""Regression replay of the checked-in fault-scenario corpus.

Every corpus entry is re-run through the complete oracle stack (both
kernel paths, all oracle families) and its reference-run fingerprint
digest must match the checked-in value **byte-for-byte** — any drift in
observable simulation behaviour on these scenarios fails here before it
can hide inside a randomized campaign.  The replay rides the campaign
runner (:func:`repro.verify.corpus.run_corpus_campaign`), so the runner
itself is pinned by the same digests.
"""

import json
from pathlib import Path

import pytest

from repro.verify import (
    PortPlan,
    Scenario,
    add_entry,
    load_corpus,
    replay_entry,
    save_corpus,
)
from repro.verify.corpus import CORPUS_VERSION, CorpusEntry, \
    run_corpus_campaign

CORPUS_PATH = Path(__file__).parent / "data" / "fault_corpus.json"

#: the five seeded campaign scenarios, in check-in order
EXPECTED_NAMES = ("dead-slave", "frozen-slave", "hung-reader",
                  "withheld-writes", "illegal-burst")


def tiny_scenario(nbytes=256):
    """A minimal healthy scenario for corpus-management tests."""
    return Scenario(
        family="flat",
        ports=(PortPlan(jobs=(("read", 0x1000_0000, nbytes),)),),
        horizon=3_000, settle=64)


class TestCheckedInCorpus:
    def test_contains_the_seeded_campaign(self):
        entries = load_corpus(CORPUS_PATH)
        assert tuple(e.name for e in entries) == EXPECTED_NAMES
        families = {e.scenario.family for e in entries}
        assert "flat" in families

    def test_replays_byte_identically_through_the_campaign_runner(self):
        entries, result = run_corpus_campaign(CORPUS_PATH)
        assert result.ok, result.counts
        assert len(result.records) == len(EXPECTED_NAMES)
        for entry, record in zip(entries, result.records):
            assert record["verdict"] == "pass", entry.name
            assert record["digest"] == entry.digest, (
                f"{entry.name} drifted from its checked-in digest")

    def test_single_entry_replay_matches_the_campaign(self):
        """replay_entry (the promotion-workflow path) and the campaign
        runner must agree on the digest."""
        entry = load_corpus(CORPUS_PATH)[0]
        __, digest = replay_entry(entry)
        assert digest == entry.digest

    def test_file_is_canonically_formatted(self, tmp_path):
        """Re-saving must be a no-op, so corpus diffs stay reviewable."""
        text = CORPUS_PATH.read_text()
        assert json.loads(text)["version"] == CORPUS_VERSION
        path = tmp_path / "corpus.json"
        save_corpus(path, load_corpus(CORPUS_PATH))
        assert path.read_text() == text


class TestCorpusManagement:
    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "corpus.json"
        entries = [CorpusEntry(name="tiny", scenario=tiny_scenario(),
                               digest="0" * 64)]
        save_corpus(path, entries)
        assert load_corpus(path) == entries

    def test_add_entry_runs_oracles_and_records_digest(self, tmp_path):
        path = tmp_path / "corpus.json"
        entry = add_entry(path, "tiny", tiny_scenario())
        assert len(entry.digest) == 64
        (loaded,) = load_corpus(path)
        assert loaded == entry
        # replaying immediately reproduces the recorded digest
        __, digest = replay_entry(loaded)
        assert digest == entry.digest

    def test_add_entry_rejects_duplicate_names(self, tmp_path):
        path = tmp_path / "corpus.json"
        add_entry(path, "tiny", tiny_scenario())
        with pytest.raises(ValueError):
            add_entry(path, "tiny", tiny_scenario(nbytes=512))

    def test_load_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "corpus.json"
        path.write_text(json.dumps({"version": 999, "entries": []}))
        with pytest.raises(ValueError):
            load_corpus(path)
