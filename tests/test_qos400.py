"""Tests for the PS-side QoS regulator — and the paper's claim about it.

The headline test reproduces the Related-Work argument: a QoS-400-style
block at the FPGA-PS boundary can shape the aggregate flow but cannot
protect one HA from another, because the merged stream carries no per-HA
information; the HyperConnect's per-port reservation can.
"""

import pytest

from repro.axi import AxiLink
from repro.masters import GreedyTrafficGenerator
from repro.memory import DramTiming, MemorySubsystem, PsQosRegulator
from repro.platforms import ZCU102
from repro.sim import ConfigurationError, Simulator
from repro.smartconnect import SmartConnect, smartconnect_master_link
from repro.system import SocSystem


def build_regulated_system(rate_budget=None, rate_period=1024,
                           max_outstanding=None):
    """SmartConnect + QoS regulator at the PS boundary + memory."""
    sim = Simulator("qos", clock_hz=ZCU102.pl_clock_hz)
    fabric_side = smartconnect_master_link(sim, "fabric")
    ps_side = AxiLink(sim, "ps", data_bytes=16)
    interconnect = SmartConnect(sim, "sc", 2, fabric_side)
    regulator = PsQosRegulator(sim, "qos400", fabric_side, ps_side,
                               rate_budget=rate_budget,
                               rate_period=rate_period,
                               max_outstanding=max_outstanding)
    MemorySubsystem(sim, "mem", ps_side, timing=ZCU102.dram)
    return sim, interconnect, regulator


class TestRegulatorMechanics:
    def test_unregulated_pass_through(self):
        sim, interconnect, regulator = build_regulated_system()
        greedy = GreedyTrafficGenerator(sim, "g", interconnect.port(0),
                                        job_bytes=4096, depth=2)
        sim.run(30_000)
        assert greedy.bytes_read > 0
        assert regulator.throttled_cycles == 0

    def test_rate_limit_caps_aggregate_bandwidth(self):
        # 16 transactions of 16 beats per 1024 cycles = 25 % of the bus
        sim, interconnect, regulator = build_regulated_system(
            rate_budget=16, rate_period=1024)
        greedy = GreedyTrafficGenerator(sim, "g", interconnect.port(0),
                                        job_bytes=4096, depth=4)
        sim.run(100_000)
        bandwidth = greedy.bytes_read / 100_000
        assert bandwidth == pytest.approx(0.25 * 16, rel=0.1)
        assert regulator.throttled_cycles > 0

    def test_outstanding_limit_enforced(self):
        sim, interconnect, regulator = build_regulated_system(
            max_outstanding=2)
        GreedyTrafficGenerator(sim, "g", interconnect.port(0),
                               job_bytes=4096, depth=4)
        peak = 0
        for _ in range(20_000):
            sim.step()
            peak = max(peak, regulator._outstanding)
        assert peak <= 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            build_regulated_system(rate_budget=0)
        with pytest.raises(ConfigurationError):
            build_regulated_system(max_outstanding=0)
        with pytest.raises(ConfigurationError):
            build_regulated_system(rate_budget=1, rate_period=0)


class TestPaperClaim:
    """'The QoS-400 does not allow controlling the bus bandwidth provided
    to each individual HA.'"""

    def _shares_with_regulation(self, rate_budget):
        sim, interconnect, __ = build_regulated_system(
            rate_budget=rate_budget, rate_period=1024)
        victim = GreedyTrafficGenerator(sim, "victim",
                                        interconnect.port(0),
                                        job_bytes=4096, burst_len=16,
                                        depth=4)
        bully = GreedyTrafficGenerator(sim, "bully",
                                       interconnect.port(1),
                                       job_bytes=4096, burst_len=256,
                                       depth=4)
        sim.run(150_000)
        total = victim.bytes_read + bully.bytes_read
        return victim.bytes_read / total, total

    def test_ps_side_regulation_cannot_rebalance_has(self):
        """Sweeping the aggregate throttle never changes the victim's
        *relative* share — only the total shrinks."""
        unthrottled_share, unthrottled_total = \
            self._shares_with_regulation(None)
        shares = []
        totals = []
        # note: with 256-beat bully bursts, transaction-rate budgets must
        # be tiny before they bind at all — itself evidence of how blunt
        # aggregate regulation is
        for budget in (4, 2, 1):
            share, total = self._shares_with_regulation(budget)
            shares.append(share)
            totals.append(total)
        # the victim stays starved at every setting ...
        assert unthrottled_share < 0.25
        for share in shares:
            assert share < 0.3
        # ... while aggregate throughput is destroyed
        assert totals[-1] < 0.3 * unthrottled_total

    def test_hyperconnect_reservation_does_rebalance(self):
        """The same scenario on the fabric side: per-port reservation
        gives the victim whatever share the integrator chooses."""
        soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
        victim = GreedyTrafficGenerator(soc.sim, "victim", soc.port(0),
                                        job_bytes=4096, burst_len=16,
                                        depth=4)
        bully = GreedyTrafficGenerator(soc.sim, "bully", soc.port(1),
                                       job_bytes=4096, burst_len=256,
                                       depth=4)
        soc.driver.set_bandwidth_shares({0: 0.7, 1: 0.3})
        soc.sim.run(150_000)
        total = victim.bytes_read + bully.bytes_read
        assert victim.bytes_read / total == pytest.approx(0.7, abs=0.05)
