"""Unit tests for the cohort-batched channel commit engine.

``CommitCohorts.flush`` promises semantics identical to calling
``Channel._commit`` on every dirty channel (plus the kernel duties that
piggyback on a commit: waking watchers and scheduling far-future heads
on the wake heap).  Both code paths — the vectorized numpy staging and
the pure-Python batch — are checked here directly against the
per-channel reference, as the module docstring of ``repro.sim.commit``
advertises.
"""

import pytest

from repro.sim import Channel, Simulator
from repro.sim.commit import _BULK_THRESHOLD, CommitCohorts

LATENCIES = (1, 2, 3)


def _build(n_channels, use_numpy):
    sim = Simulator("cohorts", fast=True)
    channels = [
        Channel(sim, f"ch{i}", latency=LATENCIES[i % len(LATENCIES)],
                capacity=None)
        for i in range(n_channels)
    ]
    cohorts = CommitCohorts(sim, channels, use_numpy=use_numpy)
    # the numpy bulk path only engages once the kernel wiring is settled
    sim._wiring_stale = False
    return sim, channels, cohorts


def _stage_traffic(channels):
    """Stage a varied mix: multi-item, single-item, and pop-only dirt."""
    for index, channel in enumerate(channels):
        for item in range(index % 3 + 1):
            channel.push((index, item))


def _state(channel):
    return (list(channel._queue), channel._occupancy, channel._dirty,
            list(channel._staged), channel._popped_this_cycle)


@pytest.mark.parametrize("use_numpy", (False, True),
                         ids=("python", "numpy"))
@pytest.mark.parametrize("n_channels", (4, _BULK_THRESHOLD + 8),
                         ids=("small", "bulk"))
def test_flush_matches_reference_commit(use_numpy, n_channels):
    cycle = 37
    sim, channels, cohorts = _build(n_channels, use_numpy)
    _stage_traffic(channels)
    dirty = list(sim._dirty_channels)
    assert len(dirty) == n_channels

    # the reference: an identical twin committed channel by channel
    ref_sim, ref_channels, __ = _build(n_channels, use_numpy=False)
    _stage_traffic(ref_channels)
    for channel in ref_channels:
        channel._commit(cycle)

    cohorts.flush(cycle, sim._dirty_channels)
    assert sim._dirty_channels == []
    for channel, reference in zip(channels, ref_channels):
        assert _state(channel) == _state(reference)
        # ready stamps really are cycle + latency
        for ready, __item in channel._queue:
            assert ready == cycle + channel.latency


def test_bulk_flush_uses_numpy_path():
    sim, channels, cohorts = _build(_BULK_THRESHOLD, use_numpy=True)
    _stage_traffic(channels)
    cohorts.flush(5, sim._dirty_channels)
    assert cohorts.bulk_flushes == 1


def test_small_flush_stays_on_python_path():
    sim, channels, cohorts = _build(_BULK_THRESHOLD - 1, use_numpy=True)
    _stage_traffic(channels)
    cohorts.flush(5, sim._dirty_channels)
    assert cohorts.bulk_flushes == 0


@pytest.mark.parametrize("use_numpy", (False, True),
                         ids=("python", "numpy"))
def test_far_future_heads_go_on_the_wake_heap(use_numpy):
    # latency-1 heads are visible by the next polled cycle and are
    # covered by the commit-time watcher wake; only latency > 1 heads
    # need a heap entry
    cycle = 10
    sim, channels, cohorts = _build(_BULK_THRESHOLD + 3, use_numpy)
    _stage_traffic(channels)
    cohorts.flush(cycle, sim._dirty_channels)
    heap = sim._wakeheap
    assert heap.peek_cycle() == cycle + 2
    due = heap.pop_due(cycle + 3)
    assert due and all(channel.latency > 1 for channel in due)
    assert {channel.latency for channel in due} == {2, 3}
    assert heap.peek_cycle() == float("inf")


@pytest.mark.parametrize("use_numpy", (False, True),
                         ids=("python", "numpy"))
def test_flush_wakes_sleeping_watchers(use_numpy):
    sim, channels, cohorts = _build(4, use_numpy)

    from repro.sim import Component

    class Sleeper(Component):
        def tick(self, cycle):
            pass

        def is_quiescent(self, cycle):
            return True

        def wake_channels(self):
            return [channels[0]]

    sleeper = Sleeper(sim, "sleeper")
    sim._rebuild_wiring()
    sim._wiring_stale = False
    # put the watcher to sleep the way the kernel would
    sleeper._k_asleep = True
    sim._asleep[sleeper] = True
    del sim._awake[sleeper]

    channels[0].push("payload")
    cohorts.flush(3, sim._dirty_channels)
    assert sleeper._k_asleep is False
    assert sleeper in sim._awake and sleeper not in sim._asleep


def test_pop_accounting_matches_reference():
    # a channel dirtied by pops alone (no staged pushes) must shrink its
    # occupancy identically on both engines
    cycle = 50
    sim, channels, cohorts = _build(2, use_numpy=False)
    channel = channels[0]
    channel.push("a")
    channel.push("b")
    cohorts.flush(cycle, sim._dirty_channels)
    occupancy_before = channel._occupancy
    assert channel.can_pop() is False        # heads ready at cycle + 1
    sim._cycle = cycle + channel.latency     # make the heads visible
    assert channel.pop() == "a"
    cohorts.flush(cycle + channel.latency, sim._dirty_channels)
    assert channel._occupancy == occupancy_before - 1
    assert channel._popped_this_cycle == 0
    assert channel._dirty is False


def test_cohorts_group_by_latency():
    __, channels, cohorts = _build(6, use_numpy=False)
    groups = cohorts.cohorts()
    assert sorted(groups) == sorted(set(LATENCIES))
    assert sum(len(names) for names in groups.values()) == len(channels)
