"""Tests for the utilization monitor, trace record/replay, and the CLI."""

import pytest

from repro.cli import main
from repro.masters import (
    AxiDma,
    BusTraceRecorder,
    TraceRecord,
    TraceReplayMaster,
    load_trace,
)
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import BusUtilizationMonitor, SocSystem

from conftest import drain


class TestBusUtilizationMonitor:
    def test_counts_and_utilization(self, hc_soc):
        monitor = BusUtilizationMonitor(hc_soc.master_link, window=1024)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_read(0x0, 4096)
        drain(hc_soc)
        assert monitor.total_beats == 256
        assert monitor.read_beats == 256
        assert monitor.write_beats == 0
        assert 0.5 < monitor.utilization() <= 1.0

    def test_per_port_attribution(self, hc_soc):
        monitor = BusUtilizationMonitor(hc_soc.master_link)
        a = AxiDma(hc_soc.sim, "a", hc_soc.port(0))
        b = AxiDma(hc_soc.sim, "b", hc_soc.port(1))
        a.enqueue_read(0x0, 4096)
        b.enqueue_read(0x8000, 12288)
        drain(hc_soc)
        shares = monitor.port_shares()
        assert shares[0] == pytest.approx(0.25, abs=0.01)
        assert shares[1] == pytest.approx(0.75, abs=0.01)

    def test_series_and_render(self, hc_soc):
        monitor = BusUtilizationMonitor(hc_soc.master_link, window=256)
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_write(0x0, 8192)
        drain(hc_soc)
        series = monitor.series()
        assert sum(sum(bucket.values()) for bucket in series) == 512
        text = monitor.render()
        assert "bus utilization" in text
        assert "port 0" in text
        assert "timeline" in text

    def test_empty_monitor(self, hc_soc):
        monitor = BusUtilizationMonitor(hc_soc.master_link)
        assert monitor.utilization() == 0.0
        assert monitor.port_shares() == {}
        assert monitor.series() == []
        assert "0 beats" in monitor.render()

    def test_invalid_window(self, hc_soc):
        with pytest.raises(ValueError):
            BusUtilizationMonitor(hc_soc.master_link, window=0)


class TestTraceRecordReplay:
    def test_record_captures_requests(self, hc_soc):
        recorder = BusTraceRecorder(hc_soc.port(0))
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_read(0x1000, 512)
        dma.enqueue_write(0x9000, 256)
        drain(hc_soc)
        kinds = [record.kind for record in recorder.records]
        assert kinds.count("read") == 2   # 512 B = 2 bursts of 16 beats
        assert kinds.count("write") == 1
        assert recorder.records[0].address == 0x1000

    def test_save_load_round_trip(self, hc_soc, tmp_path):
        recorder = BusTraceRecorder(hc_soc.port(0))
        dma = AxiDma(hc_soc.sim, "dma", hc_soc.port(0))
        dma.enqueue_read(0x1000, 1024)
        drain(hc_soc)
        path = recorder.save(tmp_path / "trace.jsonl")
        loaded = load_trace(path)
        assert loaded == recorder.records

    def test_replay_reproduces_traffic(self, tmp_path):
        # record a workload ...
        source = SocSystem.build(ZCU102, n_ports=2)
        recorder = BusTraceRecorder(source.port(0))
        dma = AxiDma(source.sim, "dma", source.port(0))
        dma.enqueue_read(0x1000, 2048)
        dma.enqueue_write(0x9000, 1024)
        drain(source)
        # ... and replay it in a fresh system
        replay_soc = SocSystem.build(ZCU102, n_ports=2)
        replayer = TraceReplayMaster(replay_soc.sim, "replay",
                                     replay_soc.port(0),
                                     trace=recorder.records)
        replayer.start()
        replay_soc.sim.run_until(lambda: replayer.done,
                                 max_cycles=100_000)
        assert replayer.bytes_read == 2048
        assert replayer.bytes_written == 1024
        assert replayer.replays_completed == len(recorder.records)

    def test_replay_preserves_pacing(self):
        trace = [TraceRecord(0, "read", 0x0, 16),
                 TraceRecord(5000, "read", 0x1000, 16)]
        soc = SocSystem.build(ZCU102, n_ports=2)
        replayer = TraceReplayMaster(soc.sim, "replay", soc.port(0),
                                     trace=trace)
        replayer.start()
        soc.sim.run_until(lambda: replayer.done, max_cycles=50_000)
        jobs = replayer.jobs_completed
        assert jobs[1].started - jobs[0].started >= 5000

    def test_replay_idle_until_started(self):
        trace = [TraceRecord(0, "read", 0x0, 16)]
        soc = SocSystem.build(ZCU102, n_ports=2)
        replayer = TraceReplayMaster(soc.sim, "replay", soc.port(0),
                                     trace=trace)
        soc.sim.run(2000)
        assert replayer.bytes_read == 0
        assert not replayer.done

    def test_invalid_record_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceRecord(0, "copy", 0, 16)
        with pytest.raises(ConfigurationError):
            TraceRecord(-1, "read", 0, 16)
        with pytest.raises(ConfigurationError):
            TraceRecord(0, "read", 0, 0)


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "AXI HyperConnect" in out
        assert "ZCU102" in out

    def test_latency(self, capsys):
        assert main(["latency"]) == 0
        out = capsys.readouterr().out
        assert "AR" in out and "82%" in out

    def test_access_time(self, capsys):
        assert main(["access-time", "--size", "16"]) == 0
        out = capsys.readouterr().out
        assert "28.3%" in out

    def test_resources(self, capsys):
        assert main(["resources"]) == 0
        out = capsys.readouterr().out
        assert "3020" in out and "7137" in out

    def test_wcrt(self, capsys):
        assert main(["wcrt", "--bytes", "4096"]) == 0
        out = capsys.readouterr().out
        assert "WCRT bound" in out

    def test_case_study_small(self, capsys):
        assert main(["case-study", "--share", "70", "--window", "60000",
                     "--scale", "0.01"]) == 0
        out = capsys.readouterr().out
        assert "HC-70-30" in out

    def test_unknown_platform_rejected(self):
        with pytest.raises(SystemExit):
            main(["--platform", "Versal", "info"])

    def test_share_requires_hyperconnect(self):
        with pytest.raises(SystemExit):
            main(["case-study", "--interconnect", "smartconnect",
                  "--share", "50"])
