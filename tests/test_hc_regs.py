"""Unit tests for the register file, control slave, and driver."""

import pytest

from repro.axi import AxiLink, Resp, Transaction, WriteBeat, \
    make_read_request, make_write_request
from repro.hyperconnect import (
    BUDGET_UNLIMITED,
    ControlSlave,
    HyperConnectDriver,
    RegisterAccessError,
    RegisterFile,
    port_register,
)
from repro.hyperconnect.regs import (
    PORT_BUDGET,
    PORT_CTRL,
    PORT_ISSUED_READ,
    PORT_NOMINAL_BURST,
    REG_CTRL,
    REG_N_PORTS,
    REG_PERIOD,
    REG_VERSION,
)
from repro.platforms import ZCU102
from repro.sim import ConfigurationError, Simulator
from repro.system import SocSystem


class TestRegisterFile:
    def test_defaults(self):
        regs = RegisterFile(2)
        assert regs.read(REG_N_PORTS) == 2
        assert regs.read(REG_CTRL) & 1
        assert regs.read(port_register(0, PORT_NOMINAL_BURST)) == 16
        assert regs.read(port_register(1, PORT_BUDGET)) == BUDGET_UNLIMITED

    def test_write_and_read_back(self):
        regs = RegisterFile(1)
        regs.write(REG_PERIOD, 4096)
        assert regs.read(REG_PERIOD) == 4096
        assert regs.period == 4096

    def test_read_only_enforced(self):
        regs = RegisterFile(1)
        with pytest.raises(RegisterAccessError):
            regs.write(REG_N_PORTS, 5)
        with pytest.raises(RegisterAccessError):
            regs.write(REG_VERSION, 0)
        with pytest.raises(RegisterAccessError):
            regs.write(port_register(0, PORT_ISSUED_READ), 0)

    def test_unmapped_offsets_raise(self):
        regs = RegisterFile(1)
        with pytest.raises(RegisterAccessError):
            regs.read(0xFFC)
        with pytest.raises(RegisterAccessError):
            regs.write(0xFFC, 1)

    def test_write_callback_fires(self):
        regs = RegisterFile(1)
        calls = []
        regs.on_write(lambda offset, value: calls.append((offset, value)))
        regs.write(REG_PERIOD, 100)
        assert calls == [(REG_PERIOD, 100)]

    def test_values_masked_to_32_bits(self):
        regs = RegisterFile(1)
        regs.write(REG_PERIOD, 0x1_0000_0001)
        assert regs.read(REG_PERIOD) == 1

    def test_provider_backs_reads(self):
        regs = RegisterFile(1)
        counter = {"n": 7}
        regs.provide(port_register(0, PORT_ISSUED_READ),
                     lambda: counter["n"])
        assert regs.read(port_register(0, PORT_ISSUED_READ)) == 7
        counter["n"] = 9
        assert regs.read(port_register(0, PORT_ISSUED_READ)) == 9

    def test_invalid_port_count(self):
        with pytest.raises(ConfigurationError):
            RegisterFile(0)


class TestControlSlave:
    BASE = 0xA000_0000

    def build(self):
        sim = Simulator("ctrl")
        link = AxiLink(sim, "ctrl-link", data_bytes=16)
        regs = RegisterFile(2)
        slave = ControlSlave(sim, "slave", link, regs, self.BASE)
        return sim, link, regs

    def read_register(self, sim, link, offset):
        txn = Transaction("read", "hv", self.BASE + offset, 1, 4)
        link.ar.push(make_read_request(txn, 0))
        beats = []
        link.r.subscribe_push(lambda cycle, beat: beats.append(beat))
        sim.run(5)
        assert beats
        return beats[-1]

    def write_register(self, sim, link, offset, value):
        txn = Transaction("write", "hv", self.BASE + offset, 1, 4)
        link.aw.push(make_write_request(txn, 0))
        link.w.push(WriteBeat(last=True, data=value.to_bytes(4, "little")))
        responses = []
        link.b.subscribe_push(lambda cycle, beat: responses.append(beat))
        sim.run(5)
        assert responses
        return responses[-1]

    def test_register_read_over_axi(self):
        sim, link, regs = self.build()
        beat = self.read_register(sim, link, REG_N_PORTS)
        assert beat.resp is Resp.OKAY
        assert int.from_bytes(beat.data, "little") == 2

    def test_register_write_over_axi(self):
        sim, link, regs = self.build()
        response = self.write_register(sim, link, REG_PERIOD, 1234)
        assert response.resp is Resp.OKAY
        assert regs.read(REG_PERIOD) == 1234

    def test_unmapped_read_decerr(self):
        sim, link, regs = self.build()
        beat = self.read_register(sim, link, 0xF00)
        assert beat.resp is Resp.DECERR

    def test_unmapped_write_decerr(self):
        sim, link, regs = self.build()
        response = self.write_register(sim, link, 0xF00, 1)
        assert response.resp is Resp.DECERR

    def test_read_only_write_decerr(self):
        sim, link, regs = self.build()
        response = self.write_register(sim, link, REG_VERSION, 1)
        assert response.resp is Resp.DECERR

    def test_burst_access_slverr(self):
        sim, link, regs = self.build()
        txn = Transaction("read", "hv", self.BASE, 4, 4)
        link.ar.push(make_read_request(txn, 0))
        beats = []
        link.r.subscribe_push(lambda cycle, beat: beats.append(beat))
        sim.run(5)
        assert beats[-1].resp is Resp.SLVERR


class TestDriver:
    def test_driver_over_hyperconnect(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        driver = soc.driver
        assert driver.n_ports == 2
        driver.set_period(8192)
        assert driver.period == 8192

    def test_driver_over_raw_register_file(self):
        regs = RegisterFile(3)
        driver = HyperConnectDriver(regs)
        assert driver.n_ports == 3
        driver.set_nominal_burst(2, 32)
        assert regs.read(port_register(2, PORT_NOMINAL_BURST)) == 32

    def test_driver_rejects_other_targets(self):
        with pytest.raises(ConfigurationError):
            HyperConnectDriver(object())

    def test_port_range_checked(self):
        driver = HyperConnectDriver(RegisterFile(2))
        with pytest.raises(ConfigurationError):
            driver.decouple(5)

    def test_couple_decouple(self):
        driver = HyperConnectDriver(RegisterFile(2))
        assert driver.is_coupled(0)
        driver.decouple(0)
        assert not driver.is_coupled(0)
        driver.couple(0)
        assert driver.is_coupled(0)

    def test_budget_none_means_unlimited(self):
        regs = RegisterFile(1)
        driver = HyperConnectDriver(regs)
        driver.set_budget(0, 100)
        assert regs.read(port_register(0, PORT_BUDGET)) == 100
        driver.set_budget(0, None)
        assert regs.read(port_register(0, PORT_BUDGET)) == BUDGET_UNLIMITED

    def test_budget_for_share(self):
        driver = HyperConnectDriver(RegisterFile(1))
        driver.set_period(1600)
        assert driver.budget_for_share(0.5, nominal_burst=16) == 50
        assert driver.budget_for_share(0.001, nominal_burst=16) == 1  # floor

    def test_set_bandwidth_shares(self):
        regs = RegisterFile(2)
        driver = HyperConnectDriver(regs)
        budgets = driver.set_bandwidth_shares({0: 0.7, 1: 0.3},
                                              period=1600)
        assert budgets[0] == 70 and budgets[1] == 30
        assert regs.read(port_register(0, PORT_BUDGET)) == 70

    def test_shares_over_one_rejected(self):
        driver = HyperConnectDriver(RegisterFile(2))
        with pytest.raises(ConfigurationError):
            driver.set_bandwidth_shares({0: 0.8, 1: 0.5})

    def test_enable_disable_roundtrip(self):
        regs = RegisterFile(1)
        driver = HyperConnectDriver(regs)
        driver.disable()
        assert not regs.enabled
        driver.enable()
        assert regs.enabled

    def test_issued_counters_via_driver(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        from repro.masters import AxiDma
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x1000, 512)
        soc.run_until_quiescent()
        counts = soc.driver.issued(0)
        assert counts["read"] == 2   # 512 B = 2 sub-transactions of 16 beats
        assert counts["write"] == 0
