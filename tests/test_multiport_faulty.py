"""Tests: multi-port memory, cascaded HyperConnects, fault injection."""

import pytest

from repro.axi import AxiLink, PropagationProbe, Resp
from repro.hyperconnect import HyperConnect
from repro.masters import AxiDma, AxiMasterEngine, GreedyTrafficGenerator
from repro.memory import (
    DramTiming,
    FaultInjectingMemory,
    MemoryStore,
    MultiPortMemorySubsystem,
)
from repro.platforms import ZCU102
from repro.sim import ConfigurationError, Simulator


def build_dual_hp_system(with_store=False):
    """Two HyperConnects, one per HP port, sharing one DRAM (Fig. 1)."""
    sim = Simulator("dual-hp", clock_hz=ZCU102.pl_clock_hz)
    links = [AxiLink(sim, f"hp{i}", data_bytes=16) for i in range(2)]
    hcs = [HyperConnect(sim, f"hc{i}", 2, links[i]) for i in range(2)]
    store = MemoryStore() if with_store else None
    memory = MultiPortMemorySubsystem(sim, "ddr", links,
                                      timing=ZCU102.dram, store=store)
    return sim, hcs, memory, store


class TestMultiPortMemory:
    def test_single_port_behaves_like_plain_memory(self):
        sim, hcs, memory, __ = build_dual_hp_system()
        dma = AxiDma(sim, "dma", hcs[0].port(0))
        job = dma.enqueue_read(0x1000, 16)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=10_000)
        # same structural pipeline + shared-controller timing
        assert job.latency == 43

    def test_routes_by_source_port(self):
        sim, hcs, memory, __ = build_dual_hp_system()
        a = AxiDma(sim, "a", hcs[0].port(0))
        b = AxiDma(sim, "b", hcs[1].port(0))
        ja = a.enqueue_read(0x1000, 1024)
        jb = b.enqueue_write(0x9000, 1024)
        sim.run_until(lambda: ja.completed and jb.completed,
                      max_cycles=100_000)
        assert memory.per_port_beats[0] == 64
        assert memory.per_port_beats[1] == 64
        assert memory.idle()

    def test_data_integrity_across_ports(self):
        sim, hcs, memory, store = build_dual_hp_system(with_store=True)
        writer = AxiMasterEngine(sim, "w", hcs[0].port(0))
        reader = AxiMasterEngine(sim, "r", hcs[1].port(0),
                                 collect_data=True)
        payload = bytes((i * 3 + 1) & 0xFF for i in range(1024))
        writer.enqueue_write(0x4000, 1024, data=payload)
        sim.run_until(lambda: not writer.busy, max_cycles=100_000)
        job = reader.enqueue_read(0x4000, 1024)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=100_000)
        assert bytes(job.result) == payload

    def test_dram_bandwidth_shared_fairly_between_ports(self):
        sim, hcs, memory, __ = build_dual_hp_system()
        a = GreedyTrafficGenerator(sim, "a", hcs[0].port(0),
                                   job_bytes=8192, depth=4)
        b = GreedyTrafficGenerator(sim, "b", hcs[1].port(0),
                                   job_bytes=8192, depth=4)
        sim.run(100_000)
        total = memory.per_port_beats[0] + memory.per_port_beats[1]
        share = memory.per_port_beats[0] / total
        assert share == pytest.approx(0.5, abs=0.05)
        # the single DRAM data bus is the bottleneck: ~1 beat/cycle total
        assert total == pytest.approx(100_000, rel=0.1)

    def test_per_hc_reservation_within_a_port(self):
        sim, hcs, memory, __ = build_dual_hp_system()
        from repro.hyperconnect import HyperConnectDriver
        driver = HyperConnectDriver(hcs[0])
        driver.set_period(2048)
        victim = GreedyTrafficGenerator(sim, "v", hcs[0].port(0),
                                        job_bytes=8192, depth=4)
        rogue = GreedyTrafficGenerator(sim, "g", hcs[0].port(1),
                                       job_bytes=8192, depth=4)
        driver.set_bandwidth_shares({0: 0.8, 1: 0.2})
        sim.run(150_000)
        total = victim.bytes_read + rogue.bytes_read
        assert victim.bytes_read / total == pytest.approx(0.8, abs=0.05)

    def test_validation(self):
        sim = Simulator("bad")
        with pytest.raises(ConfigurationError):
            MultiPortMemorySubsystem(sim, "m", [])
        link = AxiLink(sim, "l")
        with pytest.raises(ConfigurationError):
            MultiPortMemorySubsystem(sim, "m2", [link], command_depth=0)


class TestCascadedHyperConnect:
    """An EFifoLink is an AxiLink, so HyperConnects compose."""

    def build(self):
        sim = Simulator("cascade", clock_hz=ZCU102.pl_clock_hz)
        master = AxiLink(sim, "m", data_bytes=16)
        parent = HyperConnect(sim, "parent", 2, master)
        child = HyperConnect(sim, "child", 2, parent.port(0))
        from repro.memory import MemorySubsystem
        MemorySubsystem(sim, "mem", master, timing=ZCU102.dram)
        return sim, parent, child

    def test_latency_is_additive(self):
        sim, parent, child = self.build()
        probe = PropagationProbe(child.port(0).ar,
                                 parent.master_link.ar)
        dma = AxiDma(sim, "dma", child.port(0))
        job = dma.enqueue_read(0x1000, 16)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=10_000)
        # cascading shares the boundary eFIFO: the child's master stage
        # IS the parent's slave eFIFO, so d_AR = 3 + 4 = 7 (not 4 + 4)
        assert probe.latency_max == 7
        assert job.latency == 43 + 4         # +3 on AR path, +1 on R path

    def test_traffic_flows_through_both_levels(self):
        sim, parent, child = self.build()
        inner = AxiDma(sim, "inner", child.port(0))
        outer = AxiDma(sim, "outer", parent.port(1))
        ji = inner.enqueue_read(0x0, 2048)
        jo = outer.enqueue_read(0x8000, 2048)
        sim.run_until(lambda: ji.completed and jo.completed,
                      max_cycles=100_000)
        assert child.total_grants == 8
        assert parent.total_grants == 16


class TestFaultInjection:
    def build(self, **kwargs):
        sim = Simulator("faulty", clock_hz=ZCU102.pl_clock_hz)
        master = AxiLink(sim, "m", data_bytes=16)
        hc = HyperConnect(sim, "hc", 2, master)
        kwargs.setdefault("timing", ZCU102.dram)
        memory = FaultInjectingMemory(sim, "mem", master, **kwargs)
        return sim, hc, memory

    def test_read_errors_reach_the_master(self):
        sim, hc, memory = self.build(error_rate=1.0, seed=3)
        responses = []
        hc.port(0).r.subscribe_push(
            lambda cycle, beat: responses.append(beat.resp))
        dma = AxiDma(sim, "dma", hc.port(0))
        job = dma.enqueue_read(0x0, 256)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=10_000)
        assert Resp.SLVERR in responses
        assert memory.errors_injected > 0

    def test_write_errors_merge_into_single_b(self):
        sim, hc, memory = self.build(error_rate=1.0, seed=3)
        responses = []
        hc.port(0).b.subscribe_push(
            lambda cycle, beat: responses.append(beat.resp))
        dma = AxiDma(sim, "dma", hc.port(0), burst_len=64)
        job = dma.enqueue_write(0x0, 64 * 16)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=20_000)
        assert responses == [Resp.SLVERR]

    def test_write_error_reaches_the_master_end_to_end(self):
        """A write-path fault must arrive at the master's B handler and
        be counted there — not just be visible on the channel."""
        sim, hc, memory = self.build(error_rate=1.0, seed=3)
        dma = AxiDma(sim, "dma", hc.port(0))
        job = dma.enqueue_write(0x0, 1024)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=20_000)
        # 1024 B at 16-beat nominal bursts = 4 sub-writes, each SLVERR
        assert dma.error_responses == 4
        assert memory.errors_injected > 0
        assert job.write_bytes_done == 1024

    def test_dead_after_beats_silences_the_pipeline(self):
        sim, hc, memory = self.build(dead_after_beats=16)
        dma = AxiDma(sim, "dma", hc.port(0))
        job = dma.enqueue_read(0x0, 1024)
        sim.run(5_000)
        assert memory.is_dead
        assert memory.beats_served == 16
        assert job.completed is None
        memory.revive()
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=20_000)
        assert job.completed is not None

    def test_freeze_window_is_transient(self):
        sim, hc, memory = self.build(freeze_window=(100, 400))
        dma = AxiDma(sim, "dma", hc.port(0))
        job = dma.enqueue_read(0x0, 2048)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=20_000)
        assert job.completed is not None
        assert job.latency > 300  # the freeze shows up in the latency

    def test_error_window_scopes_faults(self):
        sim, hc, memory = self.build(error_rate=1.0,
                                     error_window=(0x10_0000, 0x20_0000))
        responses = []
        hc.port(0).r.subscribe_push(
            lambda cycle, beat: responses.append(beat.resp))
        dma = AxiDma(sim, "dma", hc.port(0))
        clean = dma.enqueue_read(0x0, 256)
        dirty = dma.enqueue_read(0x10_0000, 256)
        sim.run_until(lambda: dirty.completed is not None,
                      max_cycles=20_000)
        assert responses[:16] == [Resp.OKAY] * 16
        assert Resp.SLVERR in responses[16:]

    def test_stalls_slow_but_never_corrupt(self):
        timing = DramTiming(read_latency=10, write_latency=5,
                            resp_latency=2)
        sim, hc, memory = self.build(stall_rate=0.2, stall_cycles=10,
                                     timing=timing, seed=11,
                                     store=MemoryStore())
        memory.store.fill_pattern(0x100, 1024, seed=5)
        engine = AxiMasterEngine(sim, "m", hc.port(0), collect_data=True)
        job = engine.enqueue_read(0x100, 1024)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=100_000)
        assert memory.stalls_injected > 0
        assert bytes(job.result) == memory.store.read(0x100, 1024)

    def test_seeded_runs_reproducible(self):
        def run(seed):
            sim, hc, memory = self.build(error_rate=0.3, seed=seed)
            dma = AxiDma(sim, "dma", hc.port(0))
            job = dma.enqueue_read(0x0, 4096)
            sim.run_until(lambda: job.completed is not None,
                          max_cycles=100_000)
            return memory.errors_injected

        assert run(7) == run(7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            self.build(error_rate=1.5)
        with pytest.raises(ConfigurationError):
            self.build(stall_rate=-0.1)
        with pytest.raises(ConfigurationError):
            self.build(stall_cycles=0)
        with pytest.raises(ConfigurationError):
            self.build(dead_after_beats=-1)
        with pytest.raises(ConfigurationError):
            self.build(freeze_window=(500, 100))
