"""Unit/integration tests for the hypervisor layer."""

import pytest

from repro.hypervisor import (
    AccessControl,
    AccessViolation,
    Criticality,
    Domain,
    Hypervisor,
    MemoryRegion,
    SystemIntegrator,
)
from repro.ipxact import accelerator_component
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem

from conftest import drain


def booted_system(n_ports=2, shares=None):
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048)
    hypervisor = Hypervisor(soc.interconnect)
    hypervisor.create_domain("crit", Criticality.HIGH,
                             bandwidth_share=(shares or {}).get("crit"))
    hypervisor.create_domain("best", Criticality.LOW,
                             bandwidth_share=(shares or {}).get("best"))
    integrator = SystemIntegrator(ZCU102)
    integrator.add_accelerator(accelerator_component("dnn"), "crit")
    integrator.add_accelerator(accelerator_component("dma"), "best")
    design = integrator.integrate()
    hypervisor.boot(design)
    return soc, hypervisor, design


class TestDomains:
    def test_region_overlap_rejected(self):
        domain = Domain("d")
        domain.add_region(0x1000, 0x1000)
        with pytest.raises(ConfigurationError):
            domain.add_region(0x1800, 0x100)

    def test_may_access(self):
        domain = Domain("d")
        domain.add_region(0x1000, 0x1000)
        assert domain.may_access(0x1800, 16)
        assert not domain.may_access(0x2000, 1)
        assert not domain.may_access(0xFFF, 2)

    def test_invalid_region(self):
        with pytest.raises(ConfigurationError):
            MemoryRegion(0, 0)

    def test_duplicate_domain_rejected(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        hypervisor = Hypervisor(soc.interconnect)
        hypervisor.create_domain("a")
        with pytest.raises(ConfigurationError):
            hypervisor.create_domain("a")


class TestAccessControl:
    def window(self):
        return MemoryRegion(0xA000_0000, 0x1000)

    def test_granted_access_passes(self):
        control = AccessControl(self.window())
        domain = Domain("d")
        control.grant(domain, MemoryRegion(0x8000_0000, 0x1000))
        control.check(domain, 0x8000_0100, 4)

    def test_ungranted_access_denied_and_recorded(self):
        control = AccessControl(self.window())
        domain = Domain("d")
        with pytest.raises(AccessViolation):
            control.check(domain, 0x9000_0000, 4)
        assert len(control.violations) == 1
        assert control.violations[0].domain == "d"

    def test_hyperconnect_window_always_denied(self):
        control = AccessControl(self.window())
        domain = Domain("d")
        with pytest.raises(AccessViolation):
            control.check(domain, 0xA000_0004, 4)

    def test_grant_overlapping_window_rejected(self):
        control = AccessControl(self.window())
        with pytest.raises(AccessViolation):
            control.grant(Domain("d"), MemoryRegion(0xA000_0800, 0x1000))


class TestBootFlow:
    def test_boot_binds_ports_and_irqs(self):
        soc, hypervisor, design = booted_system()
        assert hypervisor.ports_of("crit") == [0]
        assert hypervisor.ports_of("best") == [1]

    def test_tampered_design_refused(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        hypervisor = Hypervisor(soc.interconnect)
        hypervisor.create_domain("crit")
        integrator = SystemIntegrator(ZCU102)
        integrator.add_accelerator(accelerator_component("dnn"), "crit")
        design = integrator.integrate()
        design.accelerators[0] = design.accelerators[0]  # no-op
        design.signature = "forged"
        with pytest.raises(ConfigurationError):
            hypervisor.boot(design)

    def test_port_count_mismatch_refused(self):
        soc = SocSystem.build(ZCU102, n_ports=3)
        hypervisor = Hypervisor(soc.interconnect)
        hypervisor.create_domain("crit")
        integrator = SystemIntegrator(ZCU102)
        integrator.add_accelerator(accelerator_component("dnn"), "crit")
        design = integrator.integrate()   # 1 port != 3
        with pytest.raises(ConfigurationError):
            hypervisor.boot(design)

    def test_smartconnect_cannot_host_hypervisor(self):
        soc = SocSystem.build(ZCU102, interconnect="smartconnect",
                              n_ports=2)
        with pytest.raises(ConfigurationError):
            Hypervisor(soc.interconnect)

    def test_static_shares_applied_at_boot(self):
        soc, hypervisor, __ = booted_system(
            shares={"crit": 0.7, "best": 0.3})
        crit_budget = soc.interconnect.configs[0].budget
        best_budget = soc.interconnect.configs[1].budget
        assert crit_budget is not None and best_budget is not None
        assert crit_budget > best_budget


class TestRuntimePolicies:
    def test_isolation_decouples_all_domain_ports(self):
        soc, hypervisor, __ = booted_system()
        hypervisor.isolate_domain("best")
        assert not soc.driver.is_coupled(1)
        assert soc.driver.is_coupled(0)
        assert hypervisor.domain("best").isolated
        hypervisor.restore_domain("best")
        assert soc.driver.is_coupled(1)

    def test_isolated_misbehaving_domain_stops_interfering(self):
        soc, hypervisor, __ = booted_system()
        victim = AxiDma(soc.sim, "victim", soc.port(0))
        rogue = GreedyTrafficGenerator(soc.sim, "rogue", soc.port(1),
                                       job_bytes=4096, depth=4)
        soc.sim.run(50_000)
        hypervisor.isolate_domain("best")
        before = rogue.bytes_read
        victim.enqueue_read(0x0, 65536)
        drain(soc)
        assert rogue.bytes_read - before <= 4096 * 4  # only in-flight work

    def test_bandwidth_policy_requires_bound_ports(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        hypervisor = Hypervisor(soc.interconnect)
        hypervisor.create_domain("ghost")
        with pytest.raises(ConfigurationError):
            hypervisor.apply_bandwidth_policy({"ghost": 0.5})

    def test_guest_cannot_touch_hyperconnect(self):
        soc, hypervisor, __ = booted_system()
        with pytest.raises(AccessViolation):
            hypervisor.guest_configure_hyperconnect("best")
        assert hypervisor.access.violations

    def test_unknown_domain_rejected(self):
        soc, hypervisor, __ = booted_system()
        with pytest.raises(ConfigurationError):
            hypervisor.domain("nope")


class TestInterrupts:
    def test_completion_interrupt_routed_to_owner(self):
        soc, hypervisor, __ = booted_system()
        dma = AxiDma(soc.sim, "dma", soc.port(1))
        hypervisor.attach_accelerator("best", 1, dma)
        dma.enqueue_read(0x1000, 256)
        drain(soc)
        pending = hypervisor.interrupts.pending("best")
        assert len(pending) == 1
        assert pending[0].source == "dma"
        assert not hypervisor.interrupts.pending("crit")

    def test_acknowledge_clears_queue(self):
        soc, hypervisor, __ = booted_system()
        dma = AxiDma(soc.sim, "dma", soc.port(1))
        hypervisor.attach_accelerator("best", 1, dma)
        dma.enqueue_read(0x1000, 256)
        drain(soc)
        taken = hypervisor.interrupts.acknowledge("best")
        assert len(taken) == 1
        assert not hypervisor.interrupts.pending("best")

    def test_attach_to_foreign_port_denied(self):
        soc, hypervisor, __ = booted_system()
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        with pytest.raises(AccessViolation):
            hypervisor.attach_accelerator("best", 0, dma)

    def test_spurious_interrupts_counted(self):
        soc, hypervisor, __ = booted_system()
        hypervisor.interrupts.raise_irq(99, "ghost", 0)
        assert hypervisor.interrupts.spurious == 1
