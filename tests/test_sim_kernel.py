"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import Channel, Component, SimulationError, Simulator


class Producer(Component):
    """Pushes an incrementing counter every cycle."""

    def __init__(self, sim, name, channel):
        super().__init__(sim, name)
        self.channel = channel
        self.counter = 0

    def tick(self, cycle):
        if self.channel.can_push():
            self.channel.push(self.counter)
            self.counter += 1


class Consumer(Component):
    """Pops everything visible."""

    def __init__(self, sim, name, channel):
        super().__init__(sim, name)
        self.channel = channel
        self.received = []

    def tick(self, cycle):
        while self.channel.can_pop():
            self.received.append((cycle, self.channel.pop()))


class TestClock:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0

    def test_step_advances_one_cycle(self):
        sim = Simulator()
        sim.step()
        assert sim.now == 1

    def test_run_fixed_cycles(self):
        sim = Simulator()
        sim.run(17)
        assert sim.now == 17

    def test_negative_run_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().run(-1)

    def test_seconds_conversion(self):
        sim = Simulator(clock_hz=100e6)
        sim.run(100)
        assert sim.seconds() == pytest.approx(1e-6)
        assert sim.seconds(50) == pytest.approx(0.5e-6)

    def test_invalid_clock_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(clock_hz=0)


class TestExecution:
    def test_producer_consumer_pipeline(self):
        sim = Simulator()
        channel = Channel(sim, "ch", latency=1, capacity=2)
        producer = Producer(sim, "p", channel)
        consumer = Consumer(sim, "c", channel)
        sim.run(10)
        values = [v for (_, v) in consumer.received]
        assert values == list(range(9))  # one cycle of pipeline fill

    def test_tick_order_does_not_matter(self):
        # identical system, consumer registered before producer
        def build(consumer_first):
            sim = Simulator()
            channel = Channel(sim, "ch", latency=1, capacity=2)
            if consumer_first:
                consumer = Consumer(sim, "c", channel)
                producer = Producer(sim, "p", channel)
            else:
                producer = Producer(sim, "p", channel)
                consumer = Consumer(sim, "c", channel)
            sim.run(20)
            return [v for (_, v) in consumer.received]

        assert build(True) == build(False)

    def test_run_until_returns_elapsed(self):
        sim = Simulator()
        elapsed = sim.run_until(lambda: sim.now >= 7)
        assert elapsed == 7

    def test_run_until_timeout_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_run_until_check_every(self):
        sim = Simulator()
        sim.run_until(lambda: sim.now >= 10, check_every=4)
        # predicate only checked every 4 cycles, so we overshoot to 12
        assert sim.now == 12

    def test_finish_blocks_further_steps(self):
        sim = Simulator()
        sim.finish()
        with pytest.raises(SimulationError):
            sim.step()


class TestRegistry:
    def test_lookup_component_and_channel(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        producer = Producer(sim, "p", channel)
        assert sim.lookup("ch") is channel
        assert sim.lookup("p") is producer

    def test_lookup_unknown_raises(self):
        with pytest.raises(SimulationError):
            Simulator().lookup("ghost")

    def test_duplicate_component_name_rejected(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        Producer(sim, "p", channel)
        with pytest.raises(SimulationError):
            Consumer(sim, "p", channel)

    def test_views_are_copies(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        components = sim.components
        channels = sim.channels
        components.clear()
        channels.clear()
        assert sim.lookup("ch") is channel

    def test_idle_reflects_channel_contents(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        assert sim.idle()
        channel.push(1)
        assert not sim.idle()
