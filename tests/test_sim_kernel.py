"""Unit tests for the simulation kernel."""

import pytest

from repro.sim import Channel, Component, SimulationError, Simulator


class Producer(Component):
    """Pushes an incrementing counter every cycle."""

    def __init__(self, sim, name, channel):
        super().__init__(sim, name)
        self.channel = channel
        self.counter = 0

    def tick(self, cycle):
        if self.channel.can_push():
            self.channel.push(self.counter)
            self.counter += 1


class Consumer(Component):
    """Pops everything visible."""

    def __init__(self, sim, name, channel):
        super().__init__(sim, name)
        self.channel = channel
        self.received = []

    def tick(self, cycle):
        while self.channel.can_pop():
            self.received.append((cycle, self.channel.pop()))


class TestClock:
    def test_time_starts_at_zero(self):
        assert Simulator().now == 0

    def test_step_advances_one_cycle(self):
        sim = Simulator()
        sim.step()
        assert sim.now == 1

    def test_run_fixed_cycles(self):
        sim = Simulator()
        sim.run(17)
        assert sim.now == 17

    def test_negative_run_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().run(-1)

    def test_seconds_conversion(self):
        sim = Simulator(clock_hz=100e6)
        sim.run(100)
        assert sim.seconds() == pytest.approx(1e-6)
        assert sim.seconds(50) == pytest.approx(0.5e-6)

    def test_invalid_clock_rejected(self):
        with pytest.raises(SimulationError):
            Simulator(clock_hz=0)


class TestExecution:
    def test_producer_consumer_pipeline(self):
        sim = Simulator()
        channel = Channel(sim, "ch", latency=1, capacity=2)
        producer = Producer(sim, "p", channel)
        consumer = Consumer(sim, "c", channel)
        sim.run(10)
        values = [v for (_, v) in consumer.received]
        assert values == list(range(9))  # one cycle of pipeline fill

    def test_tick_order_does_not_matter(self):
        # identical system, consumer registered before producer
        def build(consumer_first):
            sim = Simulator()
            channel = Channel(sim, "ch", latency=1, capacity=2)
            if consumer_first:
                consumer = Consumer(sim, "c", channel)
                producer = Producer(sim, "p", channel)
            else:
                producer = Producer(sim, "p", channel)
                consumer = Consumer(sim, "c", channel)
            sim.run(20)
            return [v for (_, v) in consumer.received]

        assert build(True) == build(False)

    def test_run_until_returns_elapsed(self):
        sim = Simulator()
        elapsed = sim.run_until(lambda: sim.now >= 7)
        assert elapsed == 7

    def test_run_until_timeout_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=10)

    def test_run_until_check_every(self):
        sim = Simulator()
        sim.run_until(lambda: sim.now >= 10, check_every=4)
        # predicate only checked every 4 cycles, so we overshoot to 12
        assert sim.now == 12

    def test_run_until_never_overshoots_max_cycles(self):
        # regression: with check_every > 1 the kernel used to run whole
        # strides past max_cycles before noticing the timeout
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.run_until(lambda: False, max_cycles=10, check_every=4)
        assert sim.now == 10

    def test_run_until_exact_for_check_every_one(self):
        sim = Simulator()
        elapsed = sim.run_until(lambda: sim.now >= 13, check_every=1)
        assert elapsed == 13 and sim.now == 13

    def test_run_until_quantisation_bounded(self):
        # overshoot past the predicate is bounded by check_every - 1
        sim = Simulator()
        elapsed = sim.run_until(lambda: sim.now >= 10, check_every=7)
        assert 10 <= elapsed <= 16
        assert elapsed % 7 == 0

    def test_run_until_rejects_bad_check_every(self):
        with pytest.raises(SimulationError):
            Simulator().run_until(lambda: True, check_every=0)

    def test_finish_blocks_further_steps(self):
        sim = Simulator()
        sim.finish()
        with pytest.raises(SimulationError):
            sim.step()


class PulseSource(Component):
    """Pushes one item at each scheduled cycle; quiescent in between."""

    def __init__(self, sim, name, channel, schedule):
        super().__init__(sim, name)
        self.channel = channel
        self.schedule = sorted(schedule)
        self._index = 0

    def _due(self, cycle):
        return (self._index < len(self.schedule)
                and cycle >= self.schedule[self._index])

    def tick(self, cycle):
        if self._due(cycle) and self.channel.can_push():
            self.channel.push(cycle)
            self._index += 1

    def is_quiescent(self, cycle):
        return not self._due(cycle)

    def next_event_cycle(self, cycle):
        if self._index < len(self.schedule):
            return self.schedule[self._index]
        return None


class QuiescentConsumer(Consumer):
    """A consumer that declares itself idle when nothing is visible."""

    def is_quiescent(self, cycle):
        return not self.channel.can_pop()


class TestFastPath:
    """Unit-level checks of the quiescence-aware kernel."""

    SCHEDULE = (3, 4, 200, 1000, 1001)

    def build(self, fast):
        sim = Simulator("fp", fast=fast)
        channel = Channel(sim, "ch", latency=2, capacity=4)
        source = PulseSource(sim, "src", channel, self.SCHEDULE)
        sink = QuiescentConsumer(sim, "snk", channel)
        return sim, source, sink

    def test_run_matches_reference(self):
        outputs = []
        for fast in (False, True):
            sim, _, sink = self.build(fast)
            sim.run(1200)
            outputs.append((sim.now, sink.received))
        assert outputs[0] == outputs[1]

    def test_step_matches_reference(self):
        outputs = []
        for fast in (False, True):
            sim, _, sink = self.build(fast)
            for _ in range(250):
                sim.step()
            outputs.append((sim.now, sink.received))
        assert outputs[0] == outputs[1]

    def test_run_until_matches_reference(self):
        elapsed = []
        for fast in (False, True):
            sim, _, sink = self.build(fast)
            elapsed.append(sim.run_until(lambda: len(sink.received) >= 4,
                                         max_cycles=5000))
        assert elapsed[0] == elapsed[1]

    def test_bulk_skip_happens(self):
        sim, _, _ = self.build(fast=True)
        sim.run(1200)
        stats = sim.skip_stats
        assert stats.cycles_frozen > 900      # the long idle stretches
        assert stats.ticks_skipped > 0
        assert stats.cycles_total == 1200
        assert stats.cycles_total == stats.cycles_polled + stats.cycles_frozen

    def test_reference_path_ignores_stats(self):
        sim, _, _ = self.build(fast=False)
        sim.run(1200)
        assert sim.skip_stats.cycles_total == 0

    def test_external_push_unfreezes(self):
        sim = Simulator("wake", fast=True)
        channel = Channel(sim, "ch", latency=1)
        sink = QuiescentConsumer(sim, "snk", channel)
        sim.run(50)                 # system is frozen (nothing scheduled)
        assert sim.skip_stats.cycles_frozen > 0
        channel.push(42)            # external mutation marks the channel
        sim.run(10)
        assert [v for (_, v) in sink.received] == [42]

    def test_wake_invalidates_silent_mutation(self):
        class Flagged(Component):
            def __init__(self, sim, name):
                super().__init__(sim, name)
                self.armed = False
                self.fired_at = None

            def tick(self, cycle):
                if self.armed and self.fired_at is None:
                    self.fired_at = cycle

            def is_quiescent(self, cycle):
                return not (self.armed and self.fired_at is None)

        sim = Simulator("wake2", fast=True)
        component = Flagged(sim, "f")
        sim.run(30)                 # frozen: nothing to do, no horizon
        component.armed = True      # silent attribute mutation...
        sim.wake()                  # ...must be advertised to the kernel
        sim.run(5)
        assert component.fired_at == 30

    def test_skip_stats_reset_and_dict(self):
        sim, _, _ = self.build(fast=True)
        sim.run(1200)
        stats = sim.skip_stats
        as_dict = stats.as_dict()
        assert as_dict["cycles_total"] == 1200
        assert set(as_dict) >= {"cycles_total", "cycles_polled",
                                "cycles_frozen", "ticks_run",
                                "ticks_skipped"}
        stats.reset()
        assert stats.cycles_total == 0 and stats.ticks_run == 0

    def test_finish_blocks_fast_run(self):
        sim, _, _ = self.build(fast=True)
        sim.finish()
        with pytest.raises(SimulationError):
            sim.run(10)


class TestRegistry:
    def test_lookup_component_and_channel(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        producer = Producer(sim, "p", channel)
        assert sim.lookup("ch") is channel
        assert sim.lookup("p") is producer

    def test_lookup_unknown_raises(self):
        with pytest.raises(SimulationError):
            Simulator().lookup("ghost")

    def test_duplicate_component_name_rejected(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        Producer(sim, "p", channel)
        with pytest.raises(SimulationError):
            Consumer(sim, "p", channel)

    def test_views_are_copies(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        components = sim.components
        channels = sim.channels
        components.clear()
        channels.clear()
        assert sim.lookup("ch") is channel

    def test_idle_reflects_channel_contents(self):
        sim = Simulator()
        channel = Channel(sim, "ch")
        assert sim.idle()
        channel.push(1)
        assert not sim.idle()
