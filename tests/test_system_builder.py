"""Tests for the SocSystem builder and the platform records."""

import pytest

from repro.hyperconnect import HyperConnect
from repro.masters import AxiDma
from repro.platforms import PLATFORMS, ZCU102, ZYNQ_7020
from repro.sim import ConfigurationError
from repro.smartconnect import SmartConnect
from repro.system import SocSystem


class TestBuilder:
    def test_build_hyperconnect_system(self):
        soc = SocSystem.build(ZCU102, interconnect="hyperconnect",
                              n_ports=3)
        assert isinstance(soc.interconnect, HyperConnect)
        assert soc.driver is not None
        assert len(soc.interconnect.ports) == 3

    def test_build_smartconnect_system(self):
        soc = SocSystem.build(ZCU102, interconnect="smartconnect",
                              n_ports=2)
        assert isinstance(soc.interconnect, SmartConnect)
        assert soc.driver is None

    def test_unknown_interconnect_rejected(self):
        with pytest.raises(ConfigurationError):
            SocSystem.build(ZCU102, interconnect="axi-interconnect")

    def test_clock_comes_from_platform(self):
        soc = SocSystem.build(ZYNQ_7020)
        assert soc.sim.clock_hz == ZYNQ_7020.pl_clock_hz

    def test_bus_width_comes_from_platform(self):
        soc = SocSystem.build(ZYNQ_7020)
        assert soc.master_link.data_bytes == 8
        assert soc.port(0).data_bytes == 8

    def test_store_only_when_requested(self):
        assert SocSystem.build(ZCU102).store is None
        assert SocSystem.build(ZCU102, with_store=True).store is not None

    def test_period_applied(self):
        soc = SocSystem.build(ZCU102, period=4096)
        assert soc.interconnect.central.period == 4096

    def test_run_until_quiescent_drains_traffic(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x0, 4096)
        elapsed = soc.run_until_quiescent()
        assert elapsed > 0
        assert soc.interconnect.idle()
        assert soc.memory.idle()

    def test_quiescent_on_empty_system(self):
        soc = SocSystem.build(ZCU102)
        assert soc.run_until_quiescent() >= 0


class TestPlatforms:
    def test_registry(self):
        assert PLATFORMS["ZCU102"] is ZCU102
        assert PLATFORMS["Zynq-7020"] is ZYNQ_7020

    def test_zcu102_totals_match_table_denominators(self):
        assert ZCU102.resources.lut == 274_080
        assert ZCU102.resources.ff == 548_160

    def test_peak_bandwidth(self):
        assert ZCU102.peak_bandwidth_bytes_per_s == pytest.approx(
            150e6 * 16)

    def test_cycles_to_seconds(self):
        assert ZCU102.cycles_to_seconds(150_000_000) == pytest.approx(1.0)

    def test_platform_dram_latencies_positive(self):
        for platform in PLATFORMS.values():
            assert platform.dram.read_latency >= 1
            assert platform.dram.write_latency >= 1
