"""Tests for the parametric resource model (Table I)."""

import pytest

from repro.platforms import ZCU102, ZYNQ_7020
from repro.resources import (
    ResourceEstimate,
    hyperconnect_breakdown,
    hyperconnect_resources,
    resource_table,
    smartconnect_resources,
)
from repro.sim import ConfigurationError


class TestTableOneCalibration:
    """The paper's exact numbers at the N=2, 128-bit design point."""

    def test_hyperconnect_matches_paper(self):
        estimate = hyperconnect_resources(2, data_bytes=16)
        assert estimate.lut == 3020
        assert estimate.ff == 1289
        assert estimate.bram == 0
        assert estimate.dsp == 0

    def test_smartconnect_matches_paper(self):
        estimate = smartconnect_resources(2, data_bytes=16)
        assert estimate.lut == 3785
        assert estimate.ff == 7137
        assert estimate.bram == 0
        assert estimate.dsp == 0

    def test_hyperconnect_cheaper_than_smartconnect(self):
        hc = hyperconnect_resources(2)
        sc = smartconnect_resources(2)
        assert hc.lut < sc.lut
        assert hc.ff < sc.ff


class TestScaling:
    @pytest.mark.parametrize("model", [hyperconnect_resources,
                                       smartconnect_resources])
    def test_monotonic_in_ports(self, model):
        previous = model(1)
        for n_ports in range(2, 9):
            estimate = model(n_ports)
            assert estimate.lut > previous.lut
            assert estimate.ff > previous.ff
            previous = estimate

    @pytest.mark.parametrize("model", [hyperconnect_resources,
                                       smartconnect_resources])
    def test_monotonic_in_width(self, model):
        assert model(2, data_bytes=8).lut < model(2, data_bytes=16).lut
        assert model(2, data_bytes=16).lut < model(2, data_bytes=32).lut

    def test_breakdown_sums_to_total(self):
        for n_ports in (1, 2, 4, 8):
            breakdown = hyperconnect_breakdown(n_ports)
            total_lut = sum(part.lut for part in breakdown.values())
            total_ff = sum(part.ff for part in breakdown.values())
            estimate = hyperconnect_resources(n_ports)
            assert total_lut == estimate.lut
            assert total_ff == estimate.ff

    def test_breakdown_modules(self):
        breakdown = hyperconnect_breakdown(2)
        assert set(breakdown) == {"efifo_slave_ports",
                                  "transaction_supervisors", "exbar",
                                  "efifo_master", "central_unit"}

    def test_invalid_ports(self):
        with pytest.raises(ConfigurationError):
            hyperconnect_resources(0)
        with pytest.raises(ConfigurationError):
            smartconnect_resources(0)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            hyperconnect_resources(2, data_bytes=0)


class TestUtilizationAndReport:
    def test_utilization_fractions(self):
        estimate = hyperconnect_resources(2)
        util = estimate.utilization(ZCU102.resources)
        assert util["lut"] == pytest.approx(3020 / 274080)
        assert util["ff"] == pytest.approx(1289 / 548160)
        assert util["bram"] == 0.0
        assert util["dsp"] == 0.0

    def test_estimate_addition(self):
        total = ResourceEstimate(1, 2) + ResourceEstimate(10, 20, 1, 2)
        assert (total.lut, total.ff, total.bram, total.dsp) == (11, 22, 1, 2)

    def test_report_contains_paper_numbers(self):
        text = resource_table(ZCU102, n_ports=2)
        assert "3020" in text and "1289" in text
        assert "3785" in text and "7137" in text
        assert "HyperConnect" in text and "SmartConnect" in text

    def test_report_for_other_platform(self):
        text = resource_table(ZYNQ_7020, n_ports=2, data_bytes=8)
        assert "Zynq-7020" in text
