"""Unit tests for the eFIFO module (gated link + decoupling)."""

from repro.axi import DataBeat, Transaction, make_read_request
from repro.hyperconnect import EFifoLink, GatedChannel, PortGate
from repro.sim import Channel, Simulator


def request(address=0, length=1):
    txn = Transaction("read", "m", address, length, 16)
    return make_read_request(txn, 0)


class TestGatedChannel:
    def test_open_gate_behaves_normally(self):
        sim = Simulator("g")
        gate = PortGate()
        channel = GatedChannel(sim, "gc", gate)
        assert channel.can_push()
        channel.push("x")
        sim.step()
        assert channel.pop() == "x"

    def test_closed_gate_refuses_pushes(self):
        sim = Simulator("g")
        gate = PortGate(coupled=False)
        channel = GatedChannel(sim, "gc", gate)
        assert not channel.can_push()

    def test_gate_toggling(self):
        sim = Simulator("g")
        gate = PortGate()
        channel = GatedChannel(sim, "gc", gate)
        gate.coupled = False
        assert not channel.can_push()
        gate.coupled = True
        assert channel.can_push()

    def test_closed_gate_keeps_existing_items(self):
        sim = Simulator("g")
        gate = PortGate()
        channel = GatedChannel(sim, "gc", gate)
        channel.push("x")
        gate.coupled = False
        sim.step()
        # queued data remains poppable by the interconnect side
        assert channel.can_pop()


class TestEFifoLink:
    def test_request_channels_gated_response_channels_not(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0")
        link.decouple()
        assert not link.ar.can_push()
        assert not link.aw.can_push()
        assert not link.w.can_push()
        # R and B are plain channels (HyperConnect just stops pushing)
        assert link.r.can_push()
        assert link.b.can_push()

    def test_couple_decouple_roundtrip(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0")
        assert link.coupled
        link.decouple()
        assert not link.coupled
        link.couple()
        assert link.coupled
        assert link.ar.can_push()

    def test_one_cycle_latency(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0")
        link.ar.push(request())
        assert not link.ar.can_pop()
        sim.step()
        assert link.ar.can_pop()

    def test_shared_gate_across_request_channels(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0")
        assert link.ar.gate is link.aw.gate is link.w.gate is link.gate

    def test_initially_decoupled_option(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0", coupled=False)
        assert not link.coupled

    def test_five_queues_exist(self):
        sim = Simulator("e")
        link = EFifoLink(sim, "p0")
        assert len(link.channels) == 5
        link.r.push(DataBeat(last=True))
        sim.step()
        assert link.r.can_pop()
