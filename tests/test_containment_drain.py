"""Direct unit tests of the pure containment helper.

:func:`~repro.hyperconnect.supervisor.drain_and_complete_orphans` is the
drain-and-synthesize core of a faulted Transaction Supervisor, factored
out so it can be exercised here without building a HyperConnect: just an
eFIFO link, the orphan queues, and a stats collector.  The tests mirror
the TS contract by subscribing the same return-channel accounting the TS
installs (synthesized beats decrement the owed counts exactly like
genuine ones).
"""

from collections import deque

from repro.axi.payloads import AddrBeat
from repro.axi.types import ChannelName, Resp
from repro.hyperconnect import drain_and_complete_orphans
from repro.hyperconnect.efifo import EFifoLink
from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.sim.stats import PortFaultStats


def _ar(txn_id, length, address=0x1000_0000):
    return AddrBeat(channel=ChannelName.AR, txn_id=txn_id, address=address,
                    length=length, size_bytes=16)


def _aw(txn_id, length, address=0x2000_0000):
    return AddrBeat(channel=ChannelName.AW, txn_id=txn_id, address=address,
                    length=length, size_bytes=16)


class Rig:
    """An eFIFO plus the orphan queues a faulted TS would own."""

    def __init__(self, data_depth=32):
        self.sim = Simulator("drain", clock_hz=ZCU102.pl_clock_hz)
        self.link = EFifoLink(self.sim, "p", data_bytes=16,
                              data_depth=data_depth)
        self.inflight_reads = deque()
        self.inflight_writes = deque()
        self.stats = PortFaultStats()
        self.r_beats = []
        self.b_beats = []
        # the TS's return-channel accounting, verbatim: every pushed R/B
        # (synthesized or genuine) retires owed work
        self.link.r.subscribe_push(self._on_r)
        self.link.b.subscribe_push(self._on_b)

    def _on_r(self, cycle, beat):
        self.r_beats.append(beat)
        if self.inflight_reads:
            entry = self.inflight_reads[0]
            entry[1] -= 1
            if entry[1] <= 0:
                self.inflight_reads.popleft()

    def _on_b(self, cycle, beat):
        self.b_beats.append(beat)
        if self.inflight_writes:
            self.inflight_writes.popleft()

    def stage(self, *, ar=(), aw=(), w_beats=0):
        """Push HA-side traffic while coupled, then commit and decouple
        (containment always starts with the gate already closed)."""
        for beat in ar:
            assert self.link.ar.try_push(beat)
        for beat in aw:
            assert self.link.aw.try_push(beat)
        for _ in range(w_beats):
            assert self.link.w.try_push(object())
        self.sim.run(1)
        self.link.decouple()

    def containment_call(self, resp=Resp.SLVERR):
        drain_and_complete_orphans(self.link, self.inflight_reads,
                                   self.inflight_writes, resp, self.stats)


class TestDrain:
    def test_swallows_everything_visible_in_the_efifo(self):
        rig = Rig()
        rig.stage(ar=[_ar(1, 4), _ar(2, 2)], aw=[_aw(3, 3)], w_beats=3)
        rig.containment_call()
        assert rig.stats.drained_requests == 3
        assert rig.stats.drained_w_beats == 3
        # drain and synthesis share the call: the first synthesized R/B
        # already retired one owed beat and the (single) write orphan
        assert [owed for __, owed in rig.inflight_reads] == [3, 2]
        assert not rig.inflight_writes
        assert not rig.link.ar.can_pop()
        assert not rig.link.aw.can_pop()
        assert not rig.link.w.can_pop()
        # the closed gate refuses fresh HA pushes while draining
        assert not rig.link.ar.can_push()
        assert not rig.link.w.can_push()

    def test_read_queue_carries_origin_and_owed_length(self):
        rig = Rig()
        origin = _ar(7, 5)
        rig.stage(ar=[origin])
        rig.containment_call()
        assert rig.inflight_reads[0][0] is origin
        # ingested owing its full 5-beat length; the call's one
        # synthesized beat already paid the first back
        assert rig.inflight_reads[0][1] == 4


class TestSynthesis:
    def test_at_most_one_beat_per_channel_per_call(self):
        rig = Rig()
        rig.stage(ar=[_ar(1, 3)], aw=[_aw(2, 1), _aw(3, 1)])
        rig.containment_call()
        assert rig.stats.synth_r_beats == 1
        assert rig.stats.synth_b_beats == 1

    def test_completes_all_orphans_over_repeated_calls(self):
        rig = Rig()
        rig.stage(ar=[_ar(1, 3), _ar(2, 2)], aw=[_aw(3, 1)])
        for _ in range(8):
            rig.containment_call()
        assert not rig.inflight_reads
        assert not rig.inflight_writes
        assert rig.stats.synth_r_beats == 5
        assert rig.stats.synth_b_beats == 1
        # three origins answered: two reads (counted on their last beat)
        # plus one write
        assert rig.stats.orphans_completed == 3
        lasts = [beat.last for beat in rig.r_beats]
        assert lasts == [False, False, True, False, True]
        assert [beat.txn_id for beat in rig.r_beats] == [1, 1, 1, 2, 2]
        assert rig.b_beats[0].txn_id == 3

    def test_synth_resp_is_carried_on_every_beat(self):
        rig = Rig()
        rig.stage(ar=[_ar(1, 2)], aw=[_aw(2, 1)])
        for _ in range(4):
            rig.containment_call(resp=Resp.DECERR)
        assert all(beat.resp is Resp.DECERR for beat in rig.r_beats)
        assert all(beat.resp is Resp.DECERR for beat in rig.b_beats)

    def test_respects_return_channel_backpressure(self):
        rig = Rig(data_depth=1)
        rig.stage(ar=[_ar(1, 3)])
        rig.containment_call()
        assert rig.stats.synth_r_beats == 1
        # the single-slot R queue is full: a second call must not push
        rig.containment_call()
        assert rig.stats.synth_r_beats == 1
        # consumer side drains one slot; the freed capacity becomes
        # visible at the next channel commit, then synthesis resumes
        rig.sim.run(1)
        assert rig.link.r.can_pop()
        rig.link.r.pop()
        rig.sim.run(1)
        rig.containment_call()
        assert rig.stats.synth_r_beats == 2

    def test_no_work_is_a_no_op(self):
        rig = Rig()
        rig.link.decouple()
        rig.containment_call()
        assert rig.stats.as_dict() == PortFaultStats().as_dict()
        assert not rig.r_beats and not rig.b_beats
