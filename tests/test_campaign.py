"""The multi-process campaign runner: containment, determinism, schema.

The contracts the CI campaign job and the throughput benchmark lean on:

* a scenario that crashes inside a worker becomes an ``error`` record —
  the campaign always completes;
* records come back in scenario order and the campaign digest is
  identical for any worker count;
* the JSON-lines record schema is golden-file pinned
  (``tests/data/golden_campaign_results.jsonl``).
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.verify import (
    CampaignConfig,
    PortPlan,
    Scenario,
    campaign_digest,
    evaluate_record,
    load_results,
    run_campaign,
    scenario_id,
    write_results,
)
from repro.verify.campaign import RESULT_SCHEMA, VOLATILE_FIELDS

GOLDEN_PATH = Path(__file__).parent / "data" / \
    "golden_campaign_results.jsonl"


def tiny(nbytes=256, kind="read", port=0):
    return Scenario(
        family="flat",
        ports=(PortPlan(jobs=((kind, 0x1000_0000 + (port << 22),
                               nbytes),)),),
        horizon=1_500, settle=64)


def exploding():
    """Valid as pure data, raises inside the harness (unknown job kind).

    This is the crash-containment fixture: the scenario model round-trips
    it, but `build_system` refuses the job kind at run time.
    """
    return Scenario(
        family="flat",
        ports=(PortPlan(jobs=(("explode", 0x1000_0000, 256),)),),
        horizon=1_500, settle=64)


def golden_scenarios():
    """The pinned golden campaign: two passing runs and one error."""
    return [tiny(256), tiny(512, kind="write", port=1), exploding()]


GOLDEN_CONFIG = CampaignConfig(kernel_parallel=0)


class TestEvaluateRecord:
    def test_pass_record_carries_digest_and_cycles(self):
        record = evaluate_record(0, tiny().to_json(), CampaignConfig())
        assert record["schema"] == RESULT_SCHEMA
        assert record["verdict"] == "pass"
        assert record["oracle"] is None
        assert len(record["digest"]) == 64
        assert record["cycles"] == 1_500 + 64
        (engine,) = record["engines"]
        assert engine["bytes_read"] == 256
        assert record["scenario_id"] == scenario_id(tiny())
        assert record["scenario"] == tiny().to_dict()
        assert record["elapsed_ms"] >= 0

    def test_undecodable_scenario_becomes_an_error_record(self):
        record = evaluate_record(3, "{\"not\": \"a scenario\"}",
                                 CampaignConfig())
        assert record["verdict"] == "error"
        assert record["detail"]
        assert record["digest"] is None

    def test_harness_crash_becomes_an_error_record(self):
        record = evaluate_record(0, exploding().to_json(),
                                 CampaignConfig())
        assert record["verdict"] == "error"
        assert "explode" in record["detail"]

    def test_oracle_violation_becomes_a_fail_record(self, monkeypatch):
        from repro.verify import campaign as campaign_mod
        from repro.verify.oracles import OracleViolation

        def falsify(scenario, checks, parallel):
            raise OracleViolation("liveness", "synthetic", scenario)

        monkeypatch.setattr(campaign_mod, "evaluate_scenario", falsify)
        record = evaluate_record(0, tiny().to_json(), CampaignConfig())
        assert record["verdict"] == "fail"
        assert record["oracle"] == "liveness"
        assert record["detail"].startswith("[liveness] synthetic")

    def test_embed_scenario_off_keeps_records_lean(self):
        record = evaluate_record(
            0, tiny().to_json(), CampaignConfig(embed_scenario=False))
        assert record["verdict"] == "pass"
        assert record["scenario"] is None


class TestCrashContainment:
    def test_inline_campaign_survives_a_raising_scenario(self):
        result = run_campaign([tiny(), exploding(), tiny(512)],
                              workers=0, config=GOLDEN_CONFIG)
        assert [r["verdict"] for r in result.records] == \
            ["pass", "error", "pass"]
        assert result.counts == {"pass": 2, "error": 1}
        assert not result.ok

    def test_worker_processes_survive_a_raising_scenario(self):
        result = run_campaign([tiny(), exploding(), tiny(512)],
                              workers=2, config=GOLDEN_CONFIG)
        assert [r["verdict"] for r in result.records] == \
            ["pass", "error", "pass"]
        assert result.workers == 2


class TestDeterminism:
    def scenarios(self):
        return [tiny(256 * k, kind=kind, port=k % 3)
                for k, kind in enumerate(
                    ("read", "write", "copy", "read", "write", "copy"),
                    start=1)]

    def test_records_come_back_in_scenario_order(self):
        for workers in (0, 2, 3):
            result = run_campaign(self.scenarios(), workers=workers,
                                  config=GOLDEN_CONFIG)
            assert [r["index"] for r in result.records] == \
                list(range(6)), f"workers={workers}"

    def test_digest_is_identical_for_any_worker_count(self):
        digests = {
            workers: run_campaign(self.scenarios(), workers=workers,
                                  config=GOLDEN_CONFIG).digest
            for workers in (0, 2, 3)}
        assert len(set(digests.values())) == 1, digests

    def test_digest_ignores_volatile_timing_fields(self):
        records = run_campaign(self.scenarios()[:2], workers=0,
                               config=GOLDEN_CONFIG).records
        perturbed = [dict(r, elapsed_ms=1e9) for r in records]
        assert campaign_digest(records) == campaign_digest(perturbed)

    def test_digest_sees_verdict_changes(self):
        records = run_campaign(self.scenarios()[:2], workers=0,
                               config=GOLDEN_CONFIG).records
        tampered = [dict(r) for r in records]
        tampered[0]["verdict"] = "fail"
        assert campaign_digest(records) != campaign_digest(tampered)


class TestResultsFile:
    def test_write_load_round_trip(self, tmp_path):
        out = tmp_path / "results.jsonl"
        result = run_campaign([tiny(), tiny(512)], workers=0,
                              config=GOLDEN_CONFIG, output=out)
        loaded = load_results(out)
        assert loaded == list(result.records)

    def test_load_rejects_unknown_schema(self, tmp_path):
        out = tmp_path / "results.jsonl"
        out.write_text(json.dumps({"schema": 999}) + "\n")
        with pytest.raises(ValueError):
            load_results(out)

    def test_lines_are_canonical_json(self, tmp_path):
        out = tmp_path / "results.jsonl"
        run_campaign([tiny()], workers=0, config=GOLDEN_CONFIG,
                     output=out)
        (line,) = out.read_text().splitlines()
        assert line == json.dumps(json.loads(line), sort_keys=True,
                                  separators=(",", ":"))


class TestConfig:
    def test_unknown_check_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(checks=("equivalence", "vibes"))

    def test_check_subset_is_honored(self, monkeypatch):
        from repro.verify import campaign as campaign_mod
        real = campaign_mod.evaluate_scenario
        seen = {}

        def spy(scenario, checks, parallel):
            seen["checks"] = checks
            seen["parallel"] = parallel
            return real(scenario, checks=checks, parallel=parallel)

        monkeypatch.setattr(campaign_mod, "evaluate_scenario", spy)
        config = CampaignConfig(checks=("protocol",), kernel_parallel=3)
        run_campaign([tiny()], workers=0, config=config)
        assert seen == {"checks": ("protocol",), "parallel": 3}


class TestGoldenFile:
    """Field-by-field pin of the JSON-lines record schema."""

    def test_golden_campaign_results_match(self):
        result = run_campaign(golden_scenarios(), workers=0,
                              config=GOLDEN_CONFIG)
        golden = load_results(GOLDEN_PATH)
        assert len(golden) == len(result.records)
        for fresh, pinned in zip(result.records, golden):
            assert set(fresh) == set(pinned), "record fields drifted"
            for key in pinned:
                if key in VOLATILE_FIELDS:
                    continue
                assert fresh[key] == pinned[key], (
                    f"record {pinned['index']} field {key!r} drifted "
                    "from tests/data/golden_campaign_results.jsonl; "
                    "if intentional, bump RESULT_SCHEMA and regenerate")

    def test_golden_file_is_canonically_formatted(self):
        for line in GOLDEN_PATH.read_text().splitlines():
            assert line == json.dumps(json.loads(line), sort_keys=True,
                                      separators=(",", ":"))


class TestCli:
    def test_campaign_list_and_tiny_run(self, capsys, tmp_path):
        assert cli_main(["campaign", "--list"]) == 0
        assert "smoke" in capsys.readouterr().out
        out = tmp_path / "r.jsonl"
        code = cli_main(["campaign", "--grid", "throughput",
                         "--limit", "3", "--output", str(out)])
        captured = capsys.readouterr().out
        assert code == 0
        assert "pass=3" in captured
        assert "scenarios/s" in captured
        assert len(load_results(out)) == 3

    def test_campaign_exits_nonzero_on_non_pass(self, capsys,
                                                monkeypatch, tmp_path):
        def broken_grid(name, **kwargs):
            return [exploding()], ("protocol",)

        monkeypatch.setattr("repro.verify.grid_scenarios", broken_grid)
        code = cli_main(["campaign", "--grid", "faults"])
        assert code == 1
        assert "[error]" in capsys.readouterr().out

    def test_campaign_requires_a_grid(self):
        with pytest.raises(SystemExit):
            cli_main(["campaign"])


# ----------------------------------------------------------------------
# per-record wall-clock timeouts (hung-worker containment)
# ----------------------------------------------------------------------

def _sleepy_evaluate(scenario, checks, parallel):
    """Picklable evaluate hook: wedges on the marker scenario.

    Module-level on purpose — `CampaignConfig.evaluate_hook` crosses the
    worker handoff by reference, so it must be importable in the child.
    The marker is `settle == 99`; everything else evaluates for real.
    """
    if scenario.settle == 99:
        import time
        time.sleep(300)
    from repro.verify import evaluate_scenario
    return evaluate_scenario(scenario, checks=checks, parallel=parallel)


def hanging():
    """A perfectly valid scenario the hook above refuses to finish."""
    return Scenario(
        family="flat",
        ports=(PortPlan(jobs=(("read", 0x1000_0000, 256),)),),
        horizon=1_500, settle=99)


class TestRecordTimeout:
    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(record_timeout=0)
        with pytest.raises(ValueError):
            CampaignConfig(record_timeout=-1.5)

    def test_hung_worker_becomes_a_timeout_error_record(self):
        config = CampaignConfig(record_timeout=5.0,
                                evaluate_hook=_sleepy_evaluate)
        scenarios = [tiny(256), hanging(), tiny(512, port=1)]
        result = run_campaign(scenarios, workers=2, config=config)
        assert [r["index"] for r in result.records] == [0, 1, 2]
        stuck = result.records[1]
        assert stuck["verdict"] == "error"
        assert "timeout" in stuck["detail"]
        assert stuck["scenario_id"] == scenario_id(hanging())
        # the healthy records finished before the straggler was culled
        assert result.records[0]["verdict"] == "pass"
        assert result.records[2]["verdict"] == "pass"
        assert result.counts == {"pass": 2, "error": 1}
        assert not result.ok

    def test_generous_timeout_leaves_the_digest_untouched(self):
        scenarios = [tiny(256), tiny(512, kind="write", port=1)]
        plain = run_campaign(scenarios, workers=1,
                             config=CampaignConfig())
        timed = run_campaign(scenarios, workers=2,
                             config=CampaignConfig(record_timeout=120.0))
        assert timed.digest == plain.digest

    def test_cli_flag_reaches_the_config(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["campaign", "--grid", "smoke", "--record-timeout", "2.5"])
        assert args.record_timeout == 2.5
