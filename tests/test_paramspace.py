"""Declarative parameter spaces: coverage modes, determinism, grids.

Pins the :class:`~repro.verify.paramspace.ParamSpace` contracts the
campaign machinery relies on: full mode is the exact cartesian product,
pairwise covers every axis-value pair at least once, sampling and
pairwise are byte-for-byte reproducible per seed, and every registered
grid compiles into valid scenarios.
"""

from itertools import combinations

import pytest

from repro.verify import (
    COMPOSITES,
    GRIDS,
    ParamSpace,
    Scenario,
    canonical_json,
    grid_names,
    grid_scenarios,
)
from repro.verify.oracles import DEFAULT_CHECKS

AXES = {
    "depth": (2, 3, 4),
    "program": ("none", "hung_r", "withheld_w", "illegal_burst"),
    "timeout": (300, 400),
}


class TestFullMode:
    def test_cardinality_is_the_product_of_the_axes(self):
        space = ParamSpace(AXES, mode="full")
        expected = 3 * 4 * 2
        assert len(space) == expected
        assert len(space.assignments()) == expected

    def test_every_assignment_is_unique_and_complete(self):
        rows = ParamSpace(AXES, mode="full").assignments()
        keys = {canonical_json(row) for row in rows}
        assert len(keys) == len(rows)
        for row in rows:
            assert set(row) == set(AXES)
            for name, values in AXES.items():
                assert row[name] in values

    def test_iteration_order_is_stable(self):
        a = list(ParamSpace(AXES, mode="full"))
        b = list(ParamSpace(AXES, mode="full"))
        assert a == b


class TestPairwiseMode:
    def test_covers_every_axis_value_pair(self):
        space = ParamSpace(AXES, mode="pairwise")
        rows = space.assignments()
        names = list(AXES)
        for a, b in combinations(names, 2):
            for va in AXES[a]:
                for vb in AXES[b]:
                    assert any(row[a] == va and row[b] == vb
                               for row in rows), (
                        f"pair ({a}={va}, {b}={vb}) never covered")

    def test_is_smaller_than_the_full_product(self):
        full = len(ParamSpace(AXES, mode="full"))
        pairwise = len(ParamSpace(AXES, mode="pairwise"))
        assert pairwise < full

    def test_identical_seeds_yield_byte_identical_streams(self):
        a = ParamSpace(AXES, mode="pairwise", seed=7).assignments()
        b = ParamSpace(AXES, mode="pairwise", seed=7).assignments()
        assert canonical_json(a) == canonical_json(b)

    def test_single_axis_degenerates_to_its_values(self):
        space = ParamSpace({"x": (1, 2, 3)}, mode="pairwise")
        assert space.assignments() == [{"x": 1}, {"x": 2}, {"x": 3}]

    def test_wide_axes_pairwise_still_covers(self):
        axes = {"a": tuple(range(6)), "b": tuple(range(5)),
                "c": (True, False), "d": ("x", "y", "z")}
        rows = ParamSpace(axes, mode="pairwise").assignments()
        assert len(rows) >= 6 * 5            # lower bound: largest pair
        for x, y in combinations(axes, 2):
            covered = {(row[x], row[y]) for row in rows}
            assert len(covered) == len(axes[x]) * len(axes[y])


class TestSampleMode:
    def test_yields_exactly_samples_rows(self):
        space = ParamSpace(AXES, mode="sample", samples=17, seed=3)
        assert len(space.assignments()) == 17

    def test_identical_seeds_yield_byte_identical_streams(self):
        a = ParamSpace(AXES, mode="sample", samples=40, seed=9)
        b = ParamSpace(AXES, mode="sample", samples=40, seed=9)
        assert canonical_json(a.assignments()) == \
            canonical_json(b.assignments())

    def test_different_seeds_diverge(self):
        a = ParamSpace(AXES, mode="sample", samples=40, seed=1)
        b = ParamSpace(AXES, mode="sample", samples=40, seed=2)
        assert a.assignments() != b.assignments()


class TestValidation:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace(AXES, mode="sideways")

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace({})

    def test_empty_axis_values_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace({"x": ()})

    def test_nonpositive_samples_rejected(self):
        with pytest.raises(ValueError):
            ParamSpace(AXES, mode="sample", samples=0)


class TestIterUnique:
    def test_deduplicates_across_stacked_spaces(self):
        core = ParamSpace({"x": (1, 2), "y": ("a", "b")}, mode="full")
        broad = ParamSpace({"x": (1, 2, 3), "y": ("a", "b")},
                           mode="full")
        rows = list(ParamSpace.iter_unique([core, broad]))
        keys = [canonical_json(row) for row in rows]
        assert len(keys) == len(set(keys))
        assert len(rows) == 6                # union, not 4 + 6

    def test_axis_order_does_not_defeat_dedup(self):
        a = ParamSpace({"x": (1,), "y": (2,)}, mode="full")
        b = ParamSpace({"y": (2,), "x": (1,)}, mode="full")
        assert len(list(ParamSpace.iter_unique([a, b]))) == 1


class TestGridRegistry:
    @pytest.mark.parametrize("name", sorted(GRIDS))
    def test_every_grid_compiles_to_valid_scenarios(self, name):
        scenarios = GRIDS[name].scenarios()
        assert scenarios
        for scenario in scenarios:
            assert isinstance(scenario, Scenario)
            # round-trips (the campaign ships scenarios as JSON)
            assert Scenario.from_json(scenario.to_json()) == scenario

    def test_throughput_grid_is_large_enough_for_the_bench(self):
        scenarios, __ = grid_scenarios("throughput")
        keys = {s.to_json() for s in scenarios}
        assert len(keys) >= 500

    def test_smoke_composite_targets_two_hundred_scenarios(self):
        scenarios, checks = grid_scenarios("smoke")
        assert 150 <= len(scenarios) <= 400
        assert checks == DEFAULT_CHECKS

    def test_horizon_override_and_limit(self):
        scenarios, __ = grid_scenarios("fabric", horizon=2_000, limit=5)
        assert len(scenarios) == 5
        assert all(s.horizon == 2_000 for s in scenarios)

    def test_unknown_grid_raises(self):
        with pytest.raises(KeyError):
            grid_scenarios("no-such-grid")

    def test_grid_names_cover_simple_and_composite(self):
        names = grid_names()
        assert set(GRIDS) <= set(names)
        assert set(COMPOSITES) <= set(names)

    def test_seeded_grids_are_reproducible(self):
        a, __ = grid_scenarios("faults", seed=5)
        b, __ = grid_scenarios("faults", seed=5)
        assert [s.to_json() for s in a] == [s.to_json() for s in b]
