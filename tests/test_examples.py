"""Integration tests: every shipped example must run to completion.

The examples contain their own assertions about the results they
demonstrate (deadline recovery, denied guest access, bound compliance),
so executing them is a meaningful end-to-end regression, not a smoke
test.  They print their reports; pytest captures that output.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    "quickstart",
    "mixed_criticality",
    "misbehaving_ha",
    "runtime_reconfiguration",
    "wcet_analysis",
    "trace_replay_study",
]


def _load(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs_clean(name):
    module = _load(name)
    assert hasattr(module, "main"), f"{name} must expose main()"
    module.main()   # raises on any violated expectation
