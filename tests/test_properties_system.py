"""System-level property-based tests (hypothesis).

These drive randomized workloads through the full stack and assert the
invariants the paper's predictability story rests on: completion, byte
conservation, equalization, budget compliance, and data integrity.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.axi.burst import crosses_4kb, legalize, split_burst
from repro.masters import AxiDma, AxiMasterEngine
from repro.platforms import ZCU102
from repro.system import SocSystem

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


job_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=255),      # 4 KiB-aligned page
        st.integers(min_value=1, max_value=48),       # beats
    ),
    min_size=1, max_size=6,
)


class TestCompletionAndConservation:
    @SLOW
    @given(jobs_a=job_strategy, jobs_b=job_strategy)
    def test_all_jobs_complete_and_bytes_conserved(self, jobs_a, jobs_b):
        soc = SocSystem.build(ZCU102, n_ports=2)
        engines = [AxiMasterEngine(soc.sim, f"m{i}", soc.port(i))
                   for i in range(2)]
        expected = [0, 0]
        handles = []
        for index, jobs in enumerate((jobs_a, jobs_b)):
            for kind, page, beats in jobs:
                nbytes = beats * 16
                address = 0x1000_0000 + page * 4096
                if kind == "read":
                    handles.append(engines[index].enqueue_read(address,
                                                               nbytes))
                else:
                    handles.append(engines[index].enqueue_write(address,
                                                                nbytes))
                expected[index] += nbytes
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert all(job.completed is not None for job in handles)
        for index, engine in enumerate(engines):
            moved = engine.bytes_read + engine.bytes_written
            assert moved == expected[index]
        # nothing lingers anywhere in the fabric
        assert soc.interconnect.idle()
        assert soc.memory.idle()

    @SLOW
    @given(jobs=job_strategy)
    def test_memory_beat_count_matches_traffic(self, jobs):
        soc = SocSystem.build(ZCU102, n_ports=2)
        engine = AxiMasterEngine(soc.sim, "m", soc.port(0))
        total_beats = 0
        for kind, page, beats in jobs:
            address = 0x1000_0000 + page * 4096
            if kind == "read":
                engine.enqueue_read(address, beats * 16)
            else:
                engine.enqueue_write(address, beats * 16)
            total_beats += beats
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert soc.memory.beats_served == total_beats


class TestEqualizationInvariant:
    @SLOW
    @given(burst_len=st.sampled_from([1, 4, 16, 64, 256]),
           nominal=st.sampled_from([4, 8, 16, 32]))
    def test_master_side_bursts_never_exceed_nominal(self, burst_len,
                                                     nominal):
        soc = SocSystem.build(ZCU102, n_ports=2)
        soc.driver.set_nominal_burst(0, nominal)
        seen = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: seen.append(beat.length))
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=burst_len)
        dma.enqueue_read(0x0, 4096)
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert seen
        assert all(length <= nominal for length in seen)
        assert sum(seen) == 256  # 4 KiB / 16 B


class TestBurstEqualizationProperties:
    """Split + merge must be a lossless, order- and legality-preserving
    transformation for *any* burst geometry (the paper's equalization
    mechanism, built on the pure helpers in ``axi/burst.py``)."""

    FAST = settings(max_examples=200, deadline=None)

    @FAST
    @given(size_bytes=st.sampled_from([4, 8, 16]),
           length=st.integers(min_value=1, max_value=256),
           nominal=st.integers(min_value=1, max_value=64),
           page=st.integers(min_value=0, max_value=1023),
           data=st.data())
    def test_split_burst_is_lossless(self, size_bytes, length, nominal,
                                     page, data):
        # place the burst anywhere inside one 4 KiB page so it is legal
        beats_per_page = 4096 // size_bytes
        if length > beats_per_page:
            length = beats_per_page
        start_beat = data.draw(st.integers(
            min_value=0, max_value=beats_per_page - length))
        address = page * 4096 + start_beat * size_bytes
        assert not crosses_4kb(address, length, size_bytes)

        pieces = split_burst(address, length, size_bytes, nominal)
        # total beats preserved
        assert sum(beats for _, beats in pieces) == length
        # every piece respects the nominal bound
        assert all(1 <= beats <= nominal for _, beats in pieces)
        # address order: contiguous, strictly ascending coverage
        cursor = address
        for sub_address, beats in pieces:
            assert sub_address == cursor
            cursor += beats * size_bytes
        # sub-bursts of a legal burst stay 4 KiB-legal
        assert all(not crosses_4kb(sub_address, beats, size_bytes)
                   for sub_address, beats in pieces)

    @FAST
    @given(size_bytes=st.sampled_from([4, 8, 16]),
           total_beats=st.integers(min_value=1, max_value=2048),
           address=st.integers(min_value=0, max_value=1 << 20))
    def test_legalize_never_crosses_4kb(self, size_bytes, total_beats,
                                        address):
        address = (address // size_bytes) * size_bytes   # beat-aligned
        bursts = legalize(address, total_beats, size_bytes)
        assert sum(beats for _, beats in bursts) == total_beats
        cursor = address
        for sub_address, beats in bursts:
            assert sub_address == cursor
            assert not crosses_4kb(sub_address, beats, size_bytes)
            cursor += beats * size_bytes

    @SLOW
    @given(burst_len=st.sampled_from([1, 3, 16, 64, 256]),
           nominal=st.sampled_from([1, 4, 8, 32]),
           pages=st.integers(min_value=1, max_value=4))
    def test_supervisor_split_merge_round_trip(self, burst_len, nominal,
                                               pages):
        """End-to-end through the Transaction Supervisor: the master-side
        sub-burst stream must cover exactly the requested range, in
        order, within the nominal bound and the 4 KiB rule — and the
        merge side must still complete the original job as one unit."""
        soc = SocSystem.build(ZCU102, n_ports=2)
        soc.driver.set_nominal_burst(0, nominal)
        observed = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: observed.append((beat.address, beat.length)))
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=burst_len)
        nbytes = pages * 4096
        job = dma.enqueue_read(0x1000_0000, nbytes)
        soc.run_until_quiescent(max_cycles=2_000_000)
        beat_bytes = soc.master_link.data_bytes
        # lossless: the sub-bursts tile the requested range contiguously
        assert sum(beats for _, beats in observed) == nbytes // beat_bytes
        cursor = 0x1000_0000
        for sub_address, beats in observed:
            assert sub_address == cursor
            assert beats <= nominal
            assert not crosses_4kb(sub_address, beats, beat_bytes)
            cursor += beats * beat_bytes
        # merge preserved: exactly one completion for the one request
        assert job.completed is not None
        assert len(dma.jobs_completed) == 1
        assert dma.bytes_read == nbytes


class TestBudgetInvariant:
    @SLOW
    @given(budget=st.integers(min_value=1, max_value=12),
           period=st.sampled_from([512, 1024, 2048]))
    def test_issues_per_period_never_exceed_budget(self, budget, period):
        soc = SocSystem.build(ZCU102, n_ports=2, period=period)
        soc.driver.set_budget(0, budget)
        grant_cycles = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grant_cycles.append(cycle))
        from repro.masters import GreedyTrafficGenerator
        GreedyTrafficGenerator(soc.sim, "g", soc.port(0), job_bytes=4096,
                               depth=4)
        soc.sim.run(8 * period)
        # after the first recharge the budget is active; count window-wise
        for start in range(period, 7 * period, period):
            issued = sum(1 for cycle in grant_cycles
                         if start <= cycle < start + period)
            assert issued <= budget + 1   # one grant may straddle the edge


class TestDataIntegrity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=st.binary(min_size=16, max_size=2048),
           burst_len=st.sampled_from([4, 16, 64]))
    def test_random_payload_round_trip(self, payload, burst_len):
        nbytes = (len(payload) // 16) * 16
        if nbytes == 0:
            return
        payload = payload[:nbytes]
        soc = SocSystem.build(ZCU102, n_ports=2, with_store=True)
        engine = AxiMasterEngine(soc.sim, "m", soc.port(0),
                                 burst_len=burst_len, collect_data=True)
        engine.enqueue_write(0x2000, nbytes, data=payload)
        soc.run_until_quiescent(max_cycles=2_000_000)
        job = engine.enqueue_read(0x2000, nbytes)
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert bytes(job.result) == payload
