"""System-level property-based tests (hypothesis).

These drive randomized workloads through the full stack and assert the
invariants the paper's predictability story rests on: completion, byte
conservation, equalization, budget compliance, and data integrity.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.masters import AxiDma, AxiMasterEngine
from repro.platforms import ZCU102
from repro.system import SocSystem

SLOW = settings(max_examples=15, deadline=None,
                suppress_health_check=[HealthCheck.too_slow])


job_strategy = st.lists(
    st.tuples(
        st.sampled_from(["read", "write"]),
        st.integers(min_value=0, max_value=255),      # 4 KiB-aligned page
        st.integers(min_value=1, max_value=48),       # beats
    ),
    min_size=1, max_size=6,
)


class TestCompletionAndConservation:
    @SLOW
    @given(jobs_a=job_strategy, jobs_b=job_strategy)
    def test_all_jobs_complete_and_bytes_conserved(self, jobs_a, jobs_b):
        soc = SocSystem.build(ZCU102, n_ports=2)
        engines = [AxiMasterEngine(soc.sim, f"m{i}", soc.port(i))
                   for i in range(2)]
        expected = [0, 0]
        handles = []
        for index, jobs in enumerate((jobs_a, jobs_b)):
            for kind, page, beats in jobs:
                nbytes = beats * 16
                address = 0x1000_0000 + page * 4096
                if kind == "read":
                    handles.append(engines[index].enqueue_read(address,
                                                               nbytes))
                else:
                    handles.append(engines[index].enqueue_write(address,
                                                                nbytes))
                expected[index] += nbytes
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert all(job.completed is not None for job in handles)
        for index, engine in enumerate(engines):
            moved = engine.bytes_read + engine.bytes_written
            assert moved == expected[index]
        # nothing lingers anywhere in the fabric
        assert soc.interconnect.idle()
        assert soc.memory.idle()

    @SLOW
    @given(jobs=job_strategy)
    def test_memory_beat_count_matches_traffic(self, jobs):
        soc = SocSystem.build(ZCU102, n_ports=2)
        engine = AxiMasterEngine(soc.sim, "m", soc.port(0))
        total_beats = 0
        for kind, page, beats in jobs:
            address = 0x1000_0000 + page * 4096
            if kind == "read":
                engine.enqueue_read(address, beats * 16)
            else:
                engine.enqueue_write(address, beats * 16)
            total_beats += beats
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert soc.memory.beats_served == total_beats


class TestEqualizationInvariant:
    @SLOW
    @given(burst_len=st.sampled_from([1, 4, 16, 64, 256]),
           nominal=st.sampled_from([4, 8, 16, 32]))
    def test_master_side_bursts_never_exceed_nominal(self, burst_len,
                                                     nominal):
        soc = SocSystem.build(ZCU102, n_ports=2)
        soc.driver.set_nominal_burst(0, nominal)
        seen = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: seen.append(beat.length))
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=burst_len)
        dma.enqueue_read(0x0, 4096)
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert seen
        assert all(length <= nominal for length in seen)
        assert sum(seen) == 256  # 4 KiB / 16 B


class TestBudgetInvariant:
    @SLOW
    @given(budget=st.integers(min_value=1, max_value=12),
           period=st.sampled_from([512, 1024, 2048]))
    def test_issues_per_period_never_exceed_budget(self, budget, period):
        soc = SocSystem.build(ZCU102, n_ports=2, period=period)
        soc.driver.set_budget(0, budget)
        grant_cycles = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grant_cycles.append(cycle))
        from repro.masters import GreedyTrafficGenerator
        GreedyTrafficGenerator(soc.sim, "g", soc.port(0), job_bytes=4096,
                               depth=4)
        soc.sim.run(8 * period)
        # after the first recharge the budget is active; count window-wise
        for start in range(period, 7 * period, period):
            issued = sum(1 for cycle in grant_cycles
                         if start <= cycle < start + period)
            assert issued <= budget + 1   # one grant may straddle the edge


class TestDataIntegrity:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(payload=st.binary(min_size=16, max_size=2048),
           burst_len=st.sampled_from([4, 16, 64]))
    def test_random_payload_round_trip(self, payload, burst_len):
        nbytes = (len(payload) // 16) * 16
        if nbytes == 0:
            return
        payload = payload[:nbytes]
        soc = SocSystem.build(ZCU102, n_ports=2, with_store=True)
        engine = AxiMasterEngine(soc.sim, "m", soc.port(0),
                                 burst_len=burst_len, collect_data=True)
        engine.enqueue_write(0x2000, nbytes, data=payload)
        soc.run_until_quiescent(max_cycles=2_000_000)
        job = engine.enqueue_read(0x2000, nbytes)
        soc.run_until_quiescent(max_cycles=2_000_000)
        assert bytes(job.result) == payload
