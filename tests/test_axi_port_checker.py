"""Unit tests for AXI links and the protocol checker."""

import pytest

from repro.axi import (
    AxiLink,
    AxiVersion,
    ChannelName,
    DataBeat,
    LinkChecker,
    ProtocolError,
    RespBeat,
    Transaction,
    WriteBeat,
    check_addr_beat,
    make_read_request,
    make_write_request,
)


def read_beat(address=0x0, length=4, size=16, txn_id=0):
    txn = Transaction("read", "m", address, length, size)
    return make_read_request(txn, txn_id)


def write_beat(address=0x0, length=4, size=16, txn_id=0):
    txn = Transaction("write", "m", address, length, size)
    return make_write_request(txn, txn_id)


class TestAxiLink:
    def test_channels_created(self, sim):
        link = AxiLink(sim, "l")
        assert [c.name for c in link.channels] == [
            "l.AR", "l.AW", "l.W", "l.R", "l.B"]

    def test_per_channel_latency_dict(self, sim):
        link = AxiLink(sim, "l", latency={"AR": 12, "R": 11})
        assert link.ar.latency == 12
        assert link.r.latency == 11
        assert link.w.latency == 1   # unspecified roles default to 1

    def test_capacity_widened_for_deep_pipelines(self, sim):
        link = AxiLink(sim, "l", latency={"AR": 12}, addr_depth=4)
        assert link.ar.capacity >= 13

    def test_is_idle_and_clear(self, sim):
        link = AxiLink(sim, "l")
        assert link.is_idle()
        link.ar.push(read_beat())
        assert not link.is_idle()
        link.clear()
        assert link.is_idle()

    def test_invalid_width_rejected(self, sim):
        with pytest.raises(ValueError):
            AxiLink(sim, "l", data_bytes=5)


class TestCheckAddrBeat:
    def test_legal_beat_passes(self):
        check_addr_beat(read_beat(length=256))

    def test_4kb_crossing_rejected(self):
        with pytest.raises(ProtocolError):
            check_addr_beat(read_beat(address=0xFF0, length=4))

    def test_axi3_length_rejected(self):
        with pytest.raises(ProtocolError):
            check_addr_beat(read_beat(length=32), AxiVersion.AXI3)

    def test_beat_wider_than_bus_rejected(self):
        with pytest.raises(ProtocolError):
            check_addr_beat(read_beat(size=32), bus_bytes=16)


class TestLinkChecker:
    def test_clean_write_sequence(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link)
        aw = write_beat(length=2)
        link.aw.push(aw)
        link.w.push(WriteBeat(last=False))
        link.w.push(WriteBeat(last=True))
        link.b.push(RespBeat())
        checker.assert_clean()
        assert not checker.violations

    def test_early_wlast_detected(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.aw.push(write_beat(length=3))
        link.w.push(WriteBeat(last=True))   # 2 beats early
        assert checker.violations
        with pytest.raises(ProtocolError):
            checker.assert_clean()

    def test_missing_wlast_detected(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.aw.push(write_beat(length=1))
        link.w.push(WriteBeat(last=False))
        assert any("WLAST" in v for v in checker.violations)

    def test_orphan_w_detected_at_drain(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.w.push(WriteBeat(last=True))
        # early W is legal while in flight ...
        assert not checker.violations
        # ... but an orphan once the traffic has drained
        with pytest.raises(ProtocolError):
            checker.assert_clean()

    def test_early_w_matched_by_later_aw(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.w.push(WriteBeat(last=False))
        link.w.push(WriteBeat(last=True))
        link.aw.push(write_beat(length=2))   # AW arrives after its data
        checker.assert_clean()

    def test_orphan_b_detected(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.b.push(RespBeat())
        assert any("no outstanding AW" in v for v in checker.violations)

    def test_read_order_checked(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.ar.push(read_beat(length=2))
        link.r.push(DataBeat(last=False))
        link.r.push(DataBeat(last=True))
        assert not checker.violations

    def test_early_rlast_detected(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.ar.push(read_beat(length=4))
        link.r.push(DataBeat(last=True))
        assert any("RLAST" in v for v in checker.violations)

    def test_orphan_r_detected(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.r.push(DataBeat(last=True))
        assert any("no outstanding AR" in v for v in checker.violations)

    def test_strict_mode_raises_immediately(self, sim):
        link = AxiLink(sim, "l")
        LinkChecker(link, strict=True)
        with pytest.raises(ProtocolError):
            link.aw.push(write_beat(address=0xFFF8, length=4))  # 4KB cross

    def test_illegal_addr_beat_recorded(self, sim):
        link = AxiLink(sim, "l")
        checker = LinkChecker(link, strict=False)
        link.ar.push(read_beat(address=0xFF8, length=4))
        assert any("4 KiB" in v for v in checker.violations)
