"""Tests for the transaction-level fast-forward engine (repro.sim.tlm).

Three properties anchor the suite:

* **engagement** — the canonical steady-state workload (reserved
  CHaiDNN + greedy DMA under a committed schedule) actually commits
  epochs and skips most of the window;
* **exactness of the decline path** — every window the engine declines
  runs byte-identically to ``fast=True``, proven both on fault/churn
  scenarios (which always decline) and via the forced-mispredict hook,
  which rolls *every* speculation back and replays it cycle-accurately;
* **bounded fidelity of the commit path** — committed epochs preserve
  rates and byte totals within the analytic bounds the ``tlm`` oracle
  checks.
"""

import pytest

from repro.masters import AxiDma, DmaDescriptor
from repro.masters.chaidnn import ChaiDnnAccelerator
from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.sim.errors import SimulationError
from repro.sim.tlm import TlmEngine
from repro.system import SocSystem, run_case_study
from repro.verify import build_system, run_scenario, run_system
from repro.verify.oracles import check_tlm, evaluate_scenario
from repro.verify.paramspace import compile_faults, compile_isolation, \
    compile_reservation

WINDOW = 100_000
PERIOD = 2048


def build_contended_soc(tlm: bool):
    """The case-study shape: reserved CHaiDNN vs a greedy 64-beat DMA."""
    soc = SocSystem.build(ZCU102, n_ports=2, period=PERIOD,
                          fast=not tlm, tlm=tlm)
    chai = ChaiDnnAccelerator(soc.sim, "chai", soc.port(0), scale=1 / 64)
    chai.start()
    dma = AxiDma(soc.sim, "dma", soc.port(1), burst_len=64)
    dma.program([DmaDescriptor("read", 0x1000_0000, 65536),
                 DmaDescriptor("write", 0x2000_0000, 65536)], repeat=True)
    dma.start()
    soc.driver.set_bandwidth_shares({0: 0.5, 1: 0.5})
    return soc, chai, dma


def state_fingerprint(soc, chai, dma):
    """Every deterministic observable a replayed window must reproduce."""
    sups = soc.interconnect.supervisors
    return (
        soc.sim.now,
        chai.frames_completed, chai.bytes_read, chai.bytes_written,
        len(chai.jobs_completed), chai.error_responses,
        dma.rounds_completed, dma.bytes_read, dma.bytes_written,
        len(dma.jobs_completed), dma.error_responses,
        tuple(tuple(sorted(s.fault_stats.as_dict().items()))
              for s in sups),
        tuple((s.outstanding_reads, s.outstanding_writes) for s in sups),
        soc.memory.reads_served, soc.memory.writes_served,
        round(chai.job_latency.mean, 9), round(dma.job_latency.mean, 9),
    )


class TestModeSelection:
    def test_tlm_implies_fast(self):
        sim = Simulator("t", tlm=True)
        assert sim.tlm and sim.fast

    def test_tlm_rejects_parallel(self):
        with pytest.raises(SimulationError):
            Simulator("t", tlm=True, parallel=2)

    def test_builder_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TLM", "1")
        assert SocSystem.build(ZCU102, n_ports=2).sim.tlm
        monkeypatch.setenv("REPRO_TLM", "0")
        assert not SocSystem.build(ZCU102, n_ports=2).sim.tlm
        monkeypatch.delenv("REPRO_TLM")
        assert not SocSystem.build(ZCU102, n_ports=2).sim.tlm


class TestEngagement:
    def test_commits_epochs_on_steady_reservation_traffic(self):
        soc, chai, dma = build_contended_soc(tlm=True)
        soc.sim.run(WINDOW)
        stats = soc.sim.skip_stats
        assert stats.tlm_epochs > 0
        # the analytic fast-forward should dominate the window: every
        # reservation period contributes one epoch minus the resync tail
        assert stats.tlm_cycles_skipped > WINDOW // 2
        assert chai.frames_completed > 0
        assert dma.rounds_completed > 0

    def test_case_study_surfaces_skip_stats(self):
        result = run_case_study("hyperconnect", shares={0: 0.5, 1: 0.5},
                                scale=1 / 64, window_cycles=WINDOW,
                                tlm=True)
        assert result.skip_stats is not None
        assert result.skip_stats["tlm_epochs"] > 0
        assert result.skip_stats["tlm_cycles_skipped"] > 0

    def test_rate_fidelity_vs_fast(self):
        fast = run_case_study("hyperconnect", shares={0: 0.5, 1: 0.5},
                              scale=1 / 64, window_cycles=WINDOW,
                              fast=True)
        tlm = run_case_study("hyperconnect", shares={0: 0.5, 1: 0.5},
                             scale=1 / 64, window_cycles=WINDOW,
                             tlm=True)
        assert tlm.skip_stats["tlm_epochs"] > 0
        assert tlm.chaidnn_fps == pytest.approx(fast.chaidnn_fps,
                                                rel=0.30)
        assert tlm.dma_rate == pytest.approx(fast.dma_rate, rel=0.30)

    def test_execution_resumes_cleanly_after_fastforward(self):
        """Cycle-accurate execution after the window picks up seamlessly."""
        soc, chai, __ = build_contended_soc(tlm=True)
        soc.sim.run(WINDOW)
        frames = chai.frames_completed
        soc.sim.tlm = False          # demote permanently: pure fast path
        soc.sim.run(WINDOW // 2)
        assert chai.frames_completed > frames


class TestRollback:
    def test_forced_mispredict_replays_byte_identically(self):
        """Every speculation rolled back == the plain fast kernel.

        With ``_force_mispredict_after = 1`` each attempted epoch is
        speculated, fully accounted, then rolled back and replayed
        cycle-accurately — so the whole run must reproduce ``fast=True``
        exactly, including statistics means and supervisor counters.
        """
        reference_soc, ref_chai, ref_dma = build_contended_soc(tlm=False)
        reference_soc.sim.run(WINDOW)

        soc, chai, dma = build_contended_soc(tlm=True)
        engine = TlmEngine(soc.sim)
        engine._force_mispredict_after = 1
        soc.sim._tlm_engine = engine
        soc.sim.run(WINDOW)

        assert soc.sim.skip_stats.tlm_epochs == 0
        assert soc.sim.skip_stats.tlm_rollbacks > 0
        assert soc.sim.skip_stats.tlm_demotions.get(
            "mispredict:forced", 0) > 0
        assert (state_fingerprint(soc, chai, dma)
                == state_fingerprint(reference_soc, ref_chai, ref_dma))


class TestDeclinePath:
    def test_fault_scenarios_decline_and_stay_identical(self):
        scenario = compile_faults({"program": "hung_r", "n_ports": 2,
                                   "timeout": 400, "hang": 8})
        reference = run_scenario(scenario, fast=True)
        system = build_system(scenario, fast=True, tlm=True)
        candidate = run_system(system)
        assert candidate.tlm_epochs == 0
        assert system.sim.skip_stats.tlm_demotions  # reasons recorded
        assert candidate.fingerprint == reference.fingerprint

    def test_churn_scenarios_decline_and_stay_identical(self):
        scenario = compile_isolation({"n_domains": 4, "n_faulted": 0,
                                      "churn": "regrant",
                                      "churn_cycle": 64})
        reference = run_scenario(scenario, fast=True)
        candidate = run_scenario(scenario, fast=True, tlm=True)
        assert candidate.tlm_epochs == 0
        assert candidate.fingerprint == reference.fingerprint


class TestOracle:
    def test_tlm_check_passes_on_reservation_scenario(self):
        scenario = compile_reservation({"share0": 0.5, "period": 2048,
                                        "job_bytes": 16384})
        evaluate_scenario(scenario, checks=("tlm",), parallel=0)

    def test_tlm_check_flags_fabricated_overrun(self):
        """A TLM result violating the bus-capacity bound must be caught."""
        from dataclasses import replace

        from repro.verify.oracles import OracleViolation

        scenario = compile_reservation({"share0": 0.5, "period": 2048,
                                        "job_bytes": 16384})
        reference = run_scenario(scenario, fast=False)
        candidate = run_scenario(scenario, fast=True, tlm=True)
        assert candidate.tlm_epochs > 0  # this grid point fast-forwards
        check_tlm(scenario, reference, candidate)   # honest result: ok
        forged = tuple(dict(info, bytes_read=10 ** 12)
                       for info in candidate.engines)
        with pytest.raises(OracleViolation):
            check_tlm(scenario, reference,
                      replace(candidate, engines=forged))

    def test_unknown_check_still_rejected(self):
        scenario = compile_reservation({"share0": 0.5})
        with pytest.raises(ValueError):
            evaluate_scenario(scenario, checks=("bogus",))

    def test_campaign_config_accepts_tlm(self):
        from repro.verify import CampaignConfig

        CampaignConfig(checks=("equivalence", "tlm"))

    def test_tlm_composite_grid_registered(self):
        from repro.verify.paramspace import grid_scenarios

        scenarios, checks = grid_scenarios("tlm", limit=4)
        assert scenarios
        assert "tlm" in checks
