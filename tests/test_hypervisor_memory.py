"""Hypervisor memory virtualization: grants, stage-2, audit bounds.

The hypervisor-side half of the tenant-isolation tentpole: a buddy
allocator carves the DRAM store into region grants, each domain gets a
sparse stage-2 table plus a confined :class:`VirtualizedStore` view, and
the data-plane region filters are armed/cleared as grants come and go.
"""

import pytest

from repro.hypervisor import (
    AccessControl,
    AccessViolation,
    Criticality,
    Domain,
    Hypervisor,
    MemoryRegion,
    SystemIntegrator,
)
from repro.ipxact import accelerator_component
from repro.masters import AxiDma
from repro.memory import MemoryStore, TranslationFault
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem


def booted(n_ports=2, fast=False):
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048, fast=fast)
    hypervisor = Hypervisor(soc.interconnect)
    hypervisor.create_domain("crit", Criticality.HIGH)
    hypervisor.create_domain("best", Criticality.LOW)
    integrator = SystemIntegrator(ZCU102)
    integrator.add_accelerator(accelerator_component("dnn"), "crit")
    integrator.add_accelerator(accelerator_component("dma"), "best")
    hypervisor.boot(integrator.integrate())
    return soc, hypervisor


class TestAttachAndGrant:
    def test_grant_requires_attached_memory(self):
        __, hypervisor = booted()
        with pytest.raises(ConfigurationError):
            hypervisor.grant_memory("crit", 0x1000)
        with pytest.raises(ConfigurationError):
            hypervisor.domain_store("crit")
        with pytest.raises(ConfigurationError):
            hypervisor.release_memory("crit",
                                      MemoryRegion(0x1000, 0x1000))

    def test_grant_installs_every_layer(self):
        soc, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x8000)
        domain = hypervisor.domain("crit")
        # domain region list and control-plane grant
        assert region in domain.regions
        hypervisor.guest_access("crit", region.base, 16)
        # stage-2 window (identity mapped by default)
        table = hypervisor.stage2("crit")
        assert table.translate(region.base, 16) == region.base
        # data-plane filter on the domain's port
        port = domain.ports[0]
        grant = soc.driver.region_filter(port)
        assert grant == {"base": region.base, "size": region.size}

    def test_grants_to_different_domains_are_disjoint(self):
        __, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        a = hypervisor.grant_memory("crit", 0x4000)
        b = hypervisor.grant_memory("best", 0x4000)
        assert not a.overlaps(b)

    def test_filter_covers_the_convex_hull_of_many_grants(self):
        soc, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        first = hypervisor.grant_memory("crit", 0x1000)
        hypervisor.grant_memory("best", 0x1000)   # hole between grants
        second = hypervisor.grant_memory("crit", 0x1000)
        port = hypervisor.domain("crit").ports[0]
        grant = soc.driver.region_filter(port)
        base = min(first.base, second.base)
        end = max(first.end, second.end)
        assert grant["base"] <= base
        assert grant["base"] + grant["size"] >= end

    def test_non_identity_guest_mapping(self):
        __, hypervisor = booted()
        store = MemoryStore(size=1 << 24)
        hypervisor.attach_memory(store)
        region = hypervisor.grant_memory("crit", 0x1000,
                                         guest_base=0x100_0000)
        guest = hypervisor.domain_store("crit")
        guest.write(0x100_0010, b"remapped")
        assert store.read(region.base + 0x10, 8) == b"remapped"

    def test_failed_window_install_releases_the_block(self):
        __, hypervisor = booted()
        allocator = hypervisor.attach_memory(MemoryStore(size=1 << 24))
        hypervisor.grant_memory("crit", 0x1000, guest_base=0x0)
        before = allocator.free_bytes
        with pytest.raises(ValueError):
            # guest window collides with the one above
            hypervisor.grant_memory("crit", 0x1000, guest_base=0x0)
        assert allocator.free_bytes == before   # no leaked block

    def test_adopt_region_pins_the_callers_address(self):
        soc, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore())
        region = hypervisor.adopt_region("best", 0x40_0000, 0x2000)
        assert region.base == 0x40_0000
        port = hypervisor.domain("best").ports[0]
        assert soc.driver.region_filter(port) == {"base": 0x40_0000,
                                                  "size": 0x2000}


class TestDomainStoreConfinement:
    def test_tenants_cannot_read_each_other(self):
        __, hypervisor = booted()
        store = MemoryStore(size=1 << 24)
        hypervisor.attach_memory(store)
        mine = hypervisor.grant_memory("crit", 0x1000)
        theirs = hypervisor.grant_memory("best", 0x1000)
        hypervisor.domain_store("crit").write(mine.base, b"secret")
        other = hypervisor.domain_store("best")
        with pytest.raises(TranslationFault):
            other.read(mine.base, 6)
        other.write(theirs.base, b"untouched")
        assert store.read(mine.base, 6) == b"secret"


class TestRelease:
    def test_release_returns_the_block_and_drops_the_window(self):
        soc, hypervisor = booted()
        allocator = hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x1000)
        hypervisor.release_memory("crit", region)
        assert allocator.allocated_bytes == 0
        assert region not in hypervisor.domain("crit").regions
        with pytest.raises(TranslationFault):
            hypervisor.domain_store("crit").read(region.base, 4)
        # no grants left: the port's data-plane filter is cleared
        port = hypervisor.domain("crit").ports[0]
        assert soc.driver.region_filter(port) is None

    def test_release_of_foreign_region_rejected(self):
        __, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x1000)
        with pytest.raises(ConfigurationError):
            hypervisor.release_memory("best", region)

    def test_release_shrinks_the_filter_to_remaining_grants(self):
        soc, hypervisor = booted()
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        keep = hypervisor.grant_memory("crit", 0x1000)
        drop = hypervisor.grant_memory("crit", 0x1000)
        hypervisor.release_memory("crit", drop)
        port = hypervisor.domain("crit").ports[0]
        assert soc.driver.region_filter(port) == {"base": keep.base,
                                                  "size": keep.size}


class TestReleaseMidBurst:
    """Satellite: ``release_memory`` under live traffic is a clean error.

    The synchronous release path must never yank a window out from
    under in-flight beats — that is ``revoke_memory``'s job (quiesce,
    drain, then retarget).  Mid-burst it must raise, change nothing,
    and succeed normally once the port drains.
    """

    @pytest.mark.parametrize("fast", [False, True],
                             ids=["reference", "fast"])
    def test_mid_burst_release_raises_and_changes_nothing(self, fast):
        soc, hypervisor = booted(fast=fast)
        allocator = hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x8000)
        port = hypervisor.domain("crit").ports[0]
        dma = AxiDma(soc.sim, "dma", soc.port(port))
        dma.enqueue_write(region.base, 4096)
        soc.sim.run(40)   # burst accepted, beats in flight
        supervisor = soc.interconnect.supervisors[port]
        assert not supervisor.drained
        before = allocator.allocated_bytes
        with pytest.raises(ConfigurationError) as err:
            hypervisor.release_memory("crit", region)
        assert "revoke_memory" in str(err.value)
        # nothing was torn down
        assert region in hypervisor.domain("crit").regions
        assert allocator.allocated_bytes == before
        assert hypervisor.stage2("crit").translate(region.base, 16) \
            == region.base
        assert soc.driver.region_filter(port) == {"base": region.base,
                                                  "size": region.size}

    @pytest.mark.parametrize("fast", [False, True],
                             ids=["reference", "fast"])
    def test_release_succeeds_once_the_port_drains(self, fast):
        soc, hypervisor = booted(fast=fast)
        allocator = hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x8000)
        port = hypervisor.domain("crit").ports[0]
        dma = AxiDma(soc.sim, "dma", soc.port(port))
        dma.enqueue_write(region.base, 4096)
        soc.run_until_quiescent()
        assert soc.interconnect.supervisors[port].drained
        hypervisor.release_memory("crit", region)
        assert allocator.allocated_bytes == 0
        assert region not in hypervisor.domain("crit").regions


class TestPreBootGrants:
    def test_grants_made_before_boot_arm_at_boot(self):
        soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
        hypervisor = Hypervisor(soc.interconnect)
        hypervisor.create_domain("crit", Criticality.HIGH)
        hypervisor.create_domain("best", Criticality.LOW)
        hypervisor.attach_memory(MemoryStore(size=1 << 24))
        region = hypervisor.grant_memory("crit", 0x2000)
        # no ports bound yet: nothing to arm
        assert all(soc.driver.region_filter(p) is None for p in range(2))
        integrator = SystemIntegrator(ZCU102)
        integrator.add_accelerator(accelerator_component("dnn"), "crit")
        integrator.add_accelerator(accelerator_component("dma"), "best")
        hypervisor.boot(integrator.integrate())
        port = hypervisor.domain("crit").ports[0]
        assert soc.driver.region_filter(port) == {"base": region.base,
                                                  "size": region.size}


class TestAuditBounds:
    """Satellite: the violation audit trail must not grow unbounded."""

    WINDOW = MemoryRegion(0xA000_0000, 0x1000)

    def test_ring_buffer_evicts_but_total_keeps_counting(self):
        control = AccessControl(self.WINDOW, audit_depth=4)
        domain = Domain("d")
        for i in range(10):
            with pytest.raises(AccessViolation):
                control.check(domain, 0x9000_0000 + i * 0x10, 4)
        assert len(control.violations) == 4
        assert control.total_violations == 10
        # the retained entries are the newest four
        assert [v.address for v in control.violations] == \
            [0x9000_0060, 0x9000_0070, 0x9000_0080, 0x9000_0090]

    def test_default_depth_is_bounded(self):
        control = AccessControl(self.WINDOW)
        assert control.violations.maxlen is not None

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            AccessControl(self.WINDOW, audit_depth=0)

    def test_transition_ring_records_grant_and_revoke(self):
        control = AccessControl(self.WINDOW, audit_depth=4)
        domain = Domain("d")
        region = MemoryRegion(0x1000, 0x1000)
        control.grant(domain, region, cycle=7)
        control.revoke(domain, region, cycle=19)
        kinds = [(t.kind, t.domain, t.base, t.size, t.cycle)
                 for t in control.transitions]
        assert kinds == [("grant", "d", 0x1000, 0x1000, 7),
                         ("revoke", "d", 0x1000, 0x1000, 19)]
        assert control.total_transitions == 2

    def test_transition_ring_is_bounded_but_total_counts(self):
        control = AccessControl(self.WINDOW, audit_depth=3)
        domain = Domain("d")
        region = MemoryRegion(0x1000, 0x1000)
        for _ in range(5):
            control.grant(domain, region)
            control.revoke(domain, region)
        assert len(control.transitions) == 3
        assert control.total_transitions == 10

    def test_revoke_of_ungranted_region_rejected(self):
        control = AccessControl(self.WINDOW)
        domain = Domain("d")
        with pytest.raises(AccessViolation):
            control.revoke(domain, MemoryRegion(0x1000, 0x1000))
