"""Unit tests for the per-port region filter (data-plane stage-2 guard).

The hypervisor programs each tenant port's granted region into a pair of
registers; the Transaction Supervisor checks every request's burst
footprint against the grant at ingest and trips containment (DECERR)
when traffic leaves it.  This is the hardware-cheap first line of the
tenant-isolation story — it must fire exactly when a footprint leaves
the grant, count as a protocol trip (the fingerprint-pinned counter),
and stay completely inert when disabled.
"""

import pytest

from repro.axi import Transaction, make_read_request, make_write_request
from repro.hyperconnect import EFifoLink, PortConfig, TransactionSupervisor
from repro.hyperconnect.regs import (
    REGION_BASE_REG,
    REGION_GRANULE,
    REGION_PAGES_REG,
    region_register,
)
from repro.masters import AxiDma
from repro.sim import Channel, ConfigurationError, Simulator
from repro.system import SocSystem
from repro.platforms import ZCU102


def build(config=None):
    sim = Simulator("region-test")
    link = EFifoLink(sim, "p0")
    out_ar = Channel(sim, "ts.AR", 1, None)
    out_aw = Channel(sim, "ts.AW", 1, None)
    ts = TransactionSupervisor(sim, "TS0", 0, link, out_ar, out_aw,
                               config or PortConfig())
    return sim, link, out_ar, out_aw, ts


def read_request(address=0, length=16):
    txn = Transaction("read", "m", address, length, 16)
    return make_read_request(txn, 0)


def write_request(address=0, length=16):
    txn = Transaction("write", "m", address, length, 16)
    return make_write_request(txn, 0)


GRANT = PortConfig(region_base=0x4000, region_bytes=0x4000)


class TestSupervisorRegionCheck:
    def test_in_grant_traffic_passes(self):
        sim, link, out_ar, __, ts = build(GRANT)
        link.ar.push(read_request(address=0x4000, length=16))
        sim.run(4)
        assert len(out_ar.drain()) == 1
        assert not ts.faulted
        assert ts.fault_stats.protocol_trips == 0

    def test_read_below_grant_trips_containment(self):
        sim, link, out_ar, __, ts = build(GRANT)
        link.ar.push(read_request(address=0x1000, length=4))
        sim.run(4)
        assert ts.faulted
        assert ts.fault_stats.protocol_trips == 1
        assert not out_ar.drain()                # nothing forwarded

    def test_write_above_grant_trips_containment(self):
        sim, link, __, out_aw, ts = build(GRANT)
        link.aw.push(write_request(address=0x9000, length=4))
        sim.run(4)
        assert ts.faulted
        assert not out_aw.drain()

    def test_footprint_straddling_the_grant_edge_trips(self):
        sim, link, out_ar, __, ts = build(GRANT)
        # starts inside, but 16 beats x 16 bytes ends past 0x8000
        link.ar.push(read_request(address=0x7F80, length=16))
        sim.run(4)
        assert ts.faulted

    def test_footprint_ending_exactly_at_the_edge_passes(self):
        sim, link, out_ar, __, ts = build(GRANT)
        link.ar.push(read_request(address=0x7F00, length=16))
        sim.run(4)
        assert not ts.faulted
        assert len(out_ar.drain()) == 1

    def test_trip_event_kind_is_region_violation(self):
        sim, link, __, __, ts = build(GRANT)
        link.ar.push(read_request(address=0x0, length=4))
        sim.run(4)
        faults = [e for e in sim.events.as_dicts()
                  if e["event"] == "port_fault"]
        assert len(faults) == 1
        assert faults[0]["kind"] == "region_violation"
        assert "outside granted region" in faults[0]["detail"]

    def test_filter_is_independent_of_the_watchdog(self):
        # grants are armed even on ports the hypervisor does not
        # watchdog: timeout None must not disable the region check
        config = PortConfig(region_base=0x4000, region_bytes=0x4000,
                            timeout_cycles=None)
        sim, link, __, __, ts = build(config)
        link.ar.push(read_request(address=0x0, length=4))
        sim.run(4)
        assert ts.faulted

    def test_disabled_filter_passes_everything(self):
        sim, link, out_ar, __, ts = build(PortConfig())
        link.ar.push(read_request(address=0xdead_0000, length=16))
        sim.run(4)
        assert not ts.faulted
        assert len(out_ar.drain()) == 1

    def test_negative_region_rejected(self):
        with pytest.raises(ConfigurationError):
            PortConfig(region_base=-1).validate()
        with pytest.raises(ConfigurationError):
            PortConfig(region_bytes=-4096).validate()


class TestDriverRegionRegisters:
    def soc(self):
        return SocSystem.build(ZCU102, n_ports=2, period=2048)

    def test_round_trip_through_the_register_file(self):
        soc = self.soc()
        driver = soc.driver
        driver.set_region_filter(0, 0x2_0000, 0x1_0000)
        assert driver.region_filter(0) == {"base": 0x2_0000,
                                           "size": 0x1_0000}
        # the register file holds page numbers, not byte addresses
        regs = soc.interconnect.regs
        assert regs.read(region_register(0, REGION_BASE_REG)) == \
            0x2_0000 // REGION_GRANULE
        assert regs.read(region_register(0, REGION_PAGES_REG)) == \
            0x1_0000 // REGION_GRANULE

    def test_register_write_lands_in_the_port_config(self):
        soc = self.soc()
        soc.driver.set_region_filter(1, 0x4000, 0x8000)
        config = soc.interconnect.supervisors[1].config
        assert config.region_base == 0x4000
        assert config.region_bytes == 0x8000

    def test_clear_disables_the_filter(self):
        soc = self.soc()
        soc.driver.set_region_filter(0, 0x4000, 0x4000)
        soc.driver.clear_region_filter(0)
        assert soc.driver.region_filter(0) is None
        assert soc.interconnect.supervisors[0].config.region_bytes == 0

    def test_per_port_blocks_are_disjoint(self):
        soc = self.soc()
        soc.driver.set_region_filter(0, 0x4000, 0x4000)
        assert soc.driver.region_filter(1) is None

    def test_unaligned_grant_rejected(self):
        soc = self.soc()
        with pytest.raises(ConfigurationError):
            soc.driver.set_region_filter(0, 0x100, 0x4000)
        with pytest.raises(ConfigurationError):
            soc.driver.set_region_filter(0, 0x4000, 0x4100)

    def test_negative_grant_rejected(self):
        soc = self.soc()
        with pytest.raises(ConfigurationError):
            soc.driver.set_region_filter(0, -4096, 4096)


def _reprogram_run(fast, parallel=0, parallel_backend="auto"):
    """Build-run-reprogram-run on one kernel path; return observables.

    Three filtered ports stream traffic; mid-run the driver widens
    port 0's grant (its next job targets the newly legal range) and
    narrows port 2's (its next job now trips the filter).  The returned
    tuple must be bit-identical on every kernel path — the retarget is
    part of the simulated state machine, not a test-bench side effect.
    """
    soc = SocSystem.build(ZCU102, n_ports=3, period=2048, fast=fast,
                          parallel=parallel,
                          parallel_backend=parallel_backend)
    engines = [AxiDma(soc.sim, f"ha{i}", soc.port(i)) for i in range(3)]
    for port in range(3):
        soc.driver.set_region_filter(port, port * 0x8000, 0x8000)
        engines[port].enqueue_write(port * 0x8000, 1024)
        engines[port].enqueue_read(port * 0x8000 + 0x1000, 1024)
    soc.sim.run(400)
    # live retarget: port 0 widens onto [0, 0x10000), port 2 shrinks to
    # its first page only
    soc.driver.set_region_filter(0, 0x0, 0x10000)
    soc.driver.set_region_filter(2, 2 * 0x8000, REGION_GRANULE)
    engines[0].enqueue_read(0x8000 + 0x2000, 512)   # legal only now
    engines[2].enqueue_read(2 * 0x8000 + 0x4000, 512)  # now out of grant
    soc.sim.run(3000)
    supervisors = soc.interconnect.supervisors
    return (
        tuple((e.bytes_read, e.bytes_written, len(e.jobs_completed),
               e.error_responses, e.outstanding) for e in engines),
        tuple(tuple(sorted(s.fault_stats.as_dict().items()))
              for s in supervisors),
        tuple(tuple(sorted(d.items())) for d in soc.sim.events.as_dicts()),
        soc.sim.now,
    )


class TestMidRunReprogramEquivalence:
    """Mid-run filter retargeting must agree across every kernel path."""

    def test_reference_run_shape(self):
        engines, stats, events, __ = _reprogram_run(fast=False)
        # port 0's widened grant admits the late read error-free
        assert engines[0][3] == 0
        assert engines[0][2] == 3
        # port 2's narrowed grant trips on the late read
        faults = [dict(e) for e in events
                  if dict(e).get("event") == "port_fault"]
        assert any(f["port"] == 2 and f["kind"] == "region_violation"
                   for f in faults)
        assert not any(f["port"] != 2 for f in faults)

    def test_fast_path_matches_reference(self):
        assert _reprogram_run(fast=True) == _reprogram_run(fast=False)

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_parallel_paths_match_reference(self, backend):
        reference = _reprogram_run(fast=False)
        assert _reprogram_run(fast=False, parallel=2,
                              parallel_backend=backend) == reference
