"""Unit tests for the sparse stage-2 address space and the DECERR path.

Two layers of the tenant-isolation story:

* :class:`Stage2Table` / :class:`VirtualizedStore` — a domain's sparse
  guest address space, with every unmapped or straddling access raising
  :class:`TranslationFault`;
* the data-path adapters (in-order DRAM controller and the multi-port
  subsystem) — a backing-store fault never escapes as a Python
  exception: it is answered on the bus as an AXI DECERR response.
"""

import pytest

from repro.axi import (
    AxiLink,
    Resp,
    Transaction,
    WriteBeat,
    make_read_request,
    make_write_request,
)
from repro.memory import (
    DramTiming,
    MemoryAccessFault,
    MemorySubsystem,
    MemoryStore,
    MultiPortMemorySubsystem,
    Stage2Table,
    Stage2Window,
    TranslationFault,
    VirtualizedStore,
)
from repro.sim import Simulator


class TestStage2Window:
    def test_invalid_windows_rejected(self):
        with pytest.raises(ValueError):
            Stage2Window(0, 0, 0)
        with pytest.raises(ValueError):
            Stage2Window(-4096, 4096, 0)
        with pytest.raises(ValueError):
            Stage2Window(0, 4096, -4096)

    def test_contains_and_translate(self):
        window = Stage2Window(0x1000, 0x1000, 0x8000)
        assert window.contains(0x1000)
        assert window.contains(0x1FF0, 16)
        assert not window.contains(0x1FF1, 16)   # straddles the edge
        assert not window.contains(0xFFF)
        assert window.translate(0x1800) == 0x8800


class TestStage2Table:
    def test_translate_through_sparse_windows(self):
        table = Stage2Table()
        table.map(0x0000, 0x1000, 0x4_0000)
        table.map(0x8000, 0x2000, 0x9_0000)
        assert table.translate(0x0010, 16) == 0x4_0010
        assert table.translate(0x8100, 64) == 0x9_0100
        assert table.translations == 2

    def test_miss_raises_translation_fault(self):
        table = Stage2Table(name="t0.stage2")
        table.map(0x0000, 0x1000, 0x4_0000)
        with pytest.raises(TranslationFault) as info:
            table.translate(0x2000, 16)
        assert info.value.address == 0x2000
        assert table.faults == 1

    def test_straddle_raises_translation_fault(self):
        table = Stage2Table()
        table.map(0x0000, 0x1000, 0x4_0000)
        table.map(0x1000, 0x1000, 0x9_0000)   # guest-contiguous, host not
        # grants are physically contiguous per window; a burst across the
        # window seam must fault rather than silently span host regions
        with pytest.raises(TranslationFault):
            table.translate(0x0FF0, 32)

    def test_translation_fault_is_a_memory_access_fault(self):
        # the data-path adapters catch MemoryAccessFault; stage-2 misses
        # must ride that same DECERR path
        assert issubclass(TranslationFault, MemoryAccessFault)
        assert issubclass(TranslationFault, ValueError)

    def test_guest_overlap_rejected_on_both_sides(self):
        table = Stage2Table()
        table.map(0x4000, 0x2000, 0)
        with pytest.raises(ValueError):
            table.map(0x5000, 0x1000, 0x10000)   # inside the existing
        with pytest.raises(ValueError):
            table.map(0x3000, 0x2000, 0x10000)   # overlaps from below
        table.map(0x2000, 0x2000, 0x10000)       # touching is fine
        table.map(0x6000, 0x1000, 0x20000)

    def test_unmap_removes_exactly_one_window(self):
        table = Stage2Table()
        table.map(0x0000, 0x1000, 0x4_0000)
        table.map(0x8000, 0x1000, 0x9_0000)
        removed = table.unmap(0x8000)
        assert removed.host_base == 0x9_0000
        assert table.mapped_bytes == 0x1000
        with pytest.raises(ValueError):
            table.unmap(0x8000)
        with pytest.raises(TranslationFault):
            table.translate(0x8000)


class TestVirtualizedStore:
    def build(self):
        store = MemoryStore(size=1 << 24)
        table = Stage2Table()
        table.map(0x0000, 0x2000, 0x10_0000)
        return store, VirtualizedStore(store, table)

    def test_reads_and_writes_land_in_the_host_window(self):
        store, guest = self.build()
        guest.write(0x100, b"tenant-data")
        assert store.read(0x10_0100, 11) == b"tenant-data"
        assert guest.read(0x100, 11) == b"tenant-data"

    def test_fill_pattern_translates(self):
        store, guest = self.build()
        guest.fill_pattern(0x0, 64, seed=7)
        assert guest.read(0x0, 64) == store.read(0x10_0000, 64)

    def test_out_of_grant_access_is_confined(self):
        _, guest = self.build()
        with pytest.raises(TranslationFault):
            guest.read(0x2000, 4)
        with pytest.raises(TranslationFault):
            guest.write(0x3000, b"\x00" * 4)

    def test_span_and_mapped_bytes(self):
        store = MemoryStore(size=1 << 24)
        table = Stage2Table()
        guest = VirtualizedStore(store, table)
        assert guest.size == 0
        table.map(0x0000, 0x1000, 0)
        table.map(0x8000, 0x1000, 0x1000)
        assert guest.size == 0x9000          # sparse span, not sum
        assert guest.mapped_bytes == 0x2000


# ----------------------------------------------------------------------
# data-path DECERR synthesis (satellite: out-of-range -> AXI error)
# ----------------------------------------------------------------------

TIMING = DramTiming(read_latency=10, write_latency=5, resp_latency=2)


def push_read(link, address, length=1):
    txn = Transaction("read", "m", address, length, 16)
    link.ar.push(make_read_request(txn, 0))


def push_write(link, address, length=1):
    txn = Transaction("write", "m", address, length, 16)
    link.aw.push(make_write_request(txn, 0))
    for index in range(length):
        link.w.push(WriteBeat(last=index == length - 1,
                              data=b"\xAA" * 16))


class TestDramDecerr:
    def build(self, size=4096):
        sim = Simulator("decerr")
        link = AxiLink(sim, "link", data_bytes=16, data_depth=64)
        memory = MemorySubsystem(sim, "mem", link, timing=TIMING,
                                 store=MemoryStore(size=size))
        return sim, link, memory

    def test_out_of_range_read_answers_decerr_beats(self):
        sim, link, memory = self.build()
        push_read(link, address=8192, length=4)
        sim.run(40)
        beats = link.r.drain()
        assert len(beats) == 4                      # burst length honoured
        assert all(beat.resp is Resp.DECERR for beat in beats)
        assert all(beat.data is None for beat in beats)
        assert beats[-1].last
        assert memory.decode_errors == 4

    def test_out_of_range_write_answers_decerr_response(self):
        sim, link, memory = self.build()
        push_write(link, address=8192, length=2)
        sim.run(40)
        responses = link.b.drain()
        assert len(responses) == 1
        assert responses[0].resp is Resp.DECERR
        assert memory.decode_errors >= 1

    def test_in_range_traffic_stays_okay(self):
        sim, link, memory = self.build()
        push_write(link, address=0, length=2)
        push_read(link, address=0, length=2)
        sim.run(60)
        assert all(b.resp is Resp.OKAY for b in link.r.drain())
        assert all(b.resp is Resp.OKAY for b in link.b.drain())
        assert memory.decode_errors == 0

    def test_faulting_burst_does_not_wedge_the_controller(self):
        sim, link, memory = self.build()
        push_read(link, address=1 << 20, length=4)  # DECERRs
        sim.run(40)
        link.r.drain()
        push_read(link, address=0, length=2)        # then healthy traffic
        sim.run(60)
        beats = link.r.drain()
        assert len(beats) == 2
        assert all(beat.resp is Resp.OKAY for beat in beats)


class TestMultiPortDecerr:
    def build(self, size=4096):
        sim = Simulator("mp-decerr")
        links = [AxiLink(sim, f"p{i}", data_bytes=16, data_depth=64)
                 for i in range(2)]
        memory = MultiPortMemorySubsystem(sim, "mp", links, timing=TIMING,
                                          store=MemoryStore(size=size))
        return sim, links, memory

    def test_out_of_range_read_answers_decerr(self):
        sim, links, memory = self.build()
        push_read(links[0], address=8192, length=2)
        sim.run(40)
        beats = links[0].r.drain()
        assert len(beats) == 2
        assert all(beat.resp is Resp.DECERR for beat in beats)
        assert memory.decode_errors == 2

    def test_out_of_range_write_answers_decerr(self):
        sim, links, memory = self.build()
        push_write(links[1], address=8192, length=2)
        sim.run(40)
        responses = links[1].b.drain()
        assert len(responses) == 1
        assert responses[0].resp is Resp.DECERR

    def test_one_ports_fault_leaves_the_other_ok(self):
        sim, links, memory = self.build()
        push_read(links[0], address=1 << 20, length=2)
        push_read(links[1], address=0, length=2)
        sim.run(60)
        assert all(b.resp is Resp.DECERR for b in links[0].r.drain())
        assert all(b.resp is Resp.OKAY for b in links[1].r.drain())
