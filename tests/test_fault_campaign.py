"""Liveness-checked fault-injection campaign for the watchdog subsystem.

Five seeded fault scenarios — a dead slave, a transiently stalled slave,
a master that stops accepting read data, a master that withholds write
data mid-burst, and a master issuing a protocol-illegal burst — run
against watchdog-armed fabrics.  Each scenario asserts the liveness
invariants the containment design promises:

* healthy masters keep making progress and finish their work;
* every transaction a master issued is eventually answered (genuinely
  or with a synthesized error response) unless the master itself refuses
  the answer;
* strict :class:`~repro.axi.LinkChecker` monitors stay clean on every
  port whose master keeps responding;
* the reference and fast kernel paths produce bit-identical outcomes,
  event logs included.

The recovery layer is exercised end-to-end: transient faults (stalled
slave, withheld writes) are automatically reset and re-coupled, while
unrecoverable ones (dead slave, hung reader) exhaust their retry budget
and stay quarantined.
"""

import pytest

from repro.analysis import ContainmentBound
from repro.axi import LinkChecker
from repro.axi.port import AxiLink
from repro.hyperconnect import HyperConnect
from repro.hypervisor import Hypervisor, RecoveryPolicy
from repro.masters import AxiDma, FaultInjectingMaster
from repro.memory import FaultInjectingMemory, MemorySubsystem
from repro.platforms import ZCU102
from repro.sim import Simulator, Tracer
from repro.sim.errors import ConfigurationError
from repro.sim.events import PortFaultEvent, PortRecoveryEvent

TIMEOUT = 400
#: short leash so unrecoverable scenarios give up inside the test window
POLICY = RecoveryPolicy(max_retries=2, backoff_cycles=256, backoff_factor=2)


def build(fast, n_ports=2, memory_cls=MemorySubsystem, memory_kwargs=None,
          recovery=True, policy=POLICY, shares=None, timeout=TIMEOUT):
    """A watchdog-armed HyperConnect system under hypervisor control."""
    sim = Simulator("campaign", clock_hz=ZCU102.pl_clock_hz, fast=fast)
    link = AxiLink(sim, "m", data_bytes=16)
    hc = HyperConnect(sim, "hc", n_ports, link)
    memory = memory_cls(sim, "mem", link, timing=ZCU102.dram,
                        **(memory_kwargs or {}))
    hv = Hypervisor(hc)
    hv.default_recovery_policy = policy
    if timeout is not None:
        for port in range(n_ports):
            hv.driver.set_watchdog_timeout(port, timeout)
    if shares:
        hv.driver.set_bandwidth_shares(shares, period=2048)
    if recovery:
        hv.enable_fault_recovery()
    return sim, hc, hv, memory


def fingerprint(sim, hc, engines):
    """Everything observable: traffic, events, fault stats, elapsed time."""
    return (
        tuple((engine.name, engine.bytes_read, engine.bytes_written,
               len(engine.jobs_completed), engine.error_responses,
               engine.outstanding)
              for engine in engines),
        tuple(sim.events.as_dicts()),
        tuple(tuple(sorted(s.fault_stats.as_dict().items()))
              for s in hc.supervisors),
        sim.now,
    )


def recoveries(sim, kind):
    return [e for e in sim.events.events(PortRecoveryEvent)
            if e.kind == kind]


def both(run):
    """Run a scenario (asserts included) on both kernel paths."""
    reference, fast = run(fast=False), run(fast=True)
    assert reference == fast
    return reference


class TestWatchdogConfig:
    """Arming, disarming, and the disarmed-by-default contract."""

    def test_watchdog_disarmed_by_default(self):
        __, hc, hv, __ = build(fast=False, recovery=False, timeout=None)
        for port in range(hc.n_ports):
            assert hv.driver.watchdog_timeout(port) is None
            assert hc.supervisors[port].config.timeout_cycles is None

    def test_timeout_register_roundtrip(self):
        __, hc, hv, __ = build(fast=False, recovery=False, timeout=None)
        hv.driver.set_watchdog_timeout(0, 123)
        assert hv.driver.watchdog_timeout(0) == 123
        assert hc.supervisors[0].config.timeout_cycles == 123
        hv.driver.set_watchdog_timeout(0, None)
        assert hv.driver.watchdog_timeout(0) is None
        assert hc.supervisors[0].config.timeout_cycles is None
        with pytest.raises(ConfigurationError):
            hv.driver.set_watchdog_timeout(0, -1)
        with pytest.raises(ConfigurationError):
            hv.driver.set_watchdog_timeout(9, 100)

    def test_armed_watchdog_preserves_healthy_behaviour(self):
        """With well-behaved traffic the armed fabric must be cycle-exact
        against the disarmed one, on both kernel paths."""
        def run(fast, timeout):
            sim, hc, hv, __ = build(fast=fast, timeout=timeout)
            checkers = [LinkChecker(hc.port(port)) for port in range(2)]
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            a.enqueue_read(0x1000_0000, 8192)
            a.enqueue_write(0x1100_0000, 4096)
            b.enqueue_copy(0x2000_0000, 0x2800_0000, 4096)
            sim.run_until(lambda: not (a.busy or b.busy),
                          max_cycles=100_000)
            sim.run(256)
            assert sim.events.log == []
            assert all(s.fault_stats.trips == 0 for s in hc.supervisors)
            for checker in checkers:
                assert not checker.violations
            return fingerprint(sim, hc, (a, b))

        armed_reference = run(fast=False, timeout=TIMEOUT)
        armed_fast = run(fast=True, timeout=TIMEOUT)
        disarmed = run(fast=False, timeout=None)
        assert armed_reference == armed_fast
        assert armed_reference == disarmed

    def test_armed_watchdog_keeps_fast_path_skipping(self):
        """Watchdog deadlines must bound frozen horizons, not kill them."""
        sim, hc, __, __ = build(fast=True)
        dma = AxiDma(sim, "dma", hc.port(0))
        job = dma.enqueue_read(0x1000_0000, 1024)
        sim.run_until(lambda: job.completed is not None, max_cycles=50_000)
        sim.run(512)
        assert sim.skip_stats.ticks_skipped > 0


class TestFaultCampaign:
    """The five seeded scenarios, each on both kernel paths."""

    @pytest.mark.parametrize("shares", (None, {0: 0.5, 1: 0.5}),
                             ids=("free-for-all", "fig5-shares"))
    def test_dead_slave_contained_and_abandoned(self, shares):
        """Scenario 1: the memory goes permanently silent mid-run.

        Both ports trip, every issued transaction is answered with a
        synthesized error, and — because a port wedged on a dead slave
        can never drain — recovery exhausts its retries and leaves both
        ports quarantined.
        """
        def run(fast):
            sim, hc, hv, __ = build(
                fast=fast, memory_cls=FaultInjectingMemory,
                memory_kwargs={"dead_after_beats": 64, "seed": 3},
                shares=shares)
            tracer = Tracer(limit=None)
            sim.events.attach_tracer(tracer)
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            for index in range(4):
                a.enqueue_read(0x1000_0000 + index * 0x1_0000, 2048)
                b.enqueue_read(0x2000_0000 + index * 0x1_0000, 2048)
            sim.run(20_000)
            # Liveness: every transaction a master *issued* was answered
            # (with synthesized errors).  Work still queued behind the
            # quarantined port stays parked — the gate holds READY low,
            # exactly the paper's decoupling semantics.
            for engine in (a, b):
                assert engine.outstanding == 0
                assert engine.error_responses > 0
                assert engine.jobs_completed
            for port in (0, 1):
                supervisor = hc.supervisors[port]
                assert supervisor.fault_stats.watchdog_trips == 1
                assert supervisor.fault_stats.synth_r_beats > 0
                assert hv.driver.faults(port) == 1
                assert not hv.driver.is_coupled(port)
            assert hv.quarantined == {0, 1}
            assert hv.recovery.gave_up == {0, 1}
            faults = sim.events.events(PortFaultEvent)
            assert sorted(e.port for e in faults) == [0, 1]
            assert all(e.kind == "watchdog_timeout" for e in faults)
            assert all(e.age == TIMEOUT for e in faults)
            assert len(recoveries(sim, "giveup")) == 2
            assert not recoveries(sim, "recouple")
            assert len(tracer.events(kind="watchdog_timeout")) == 2
            return fingerprint(sim, hc, (a, b))

        both(run)

    def test_stalled_slave_trips_then_recovers(self):
        """Scenario 2: the memory freezes for 800 cycles, then revives.

        The watchdog contains both ports during the freeze; once the
        slave is back the contained ports drain, and the recovery agent
        resets and re-couples them.  Fresh work then completes cleanly.
        """
        policy = RecoveryPolicy(max_retries=4, backoff_cycles=256,
                                backoff_factor=2)

        def run(fast):
            sim, hc, hv, __ = build(
                fast=fast, memory_cls=FaultInjectingMemory,
                memory_kwargs={"freeze_window": (1500, 2300)},
                policy=policy)
            checkers = [LinkChecker(hc.port(port)) for port in range(2)]
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            for index in range(6):
                a.enqueue_read(0x1000_0000 + index * 0x1_0000, 4096)
                b.enqueue_read(0x2000_0000 + index * 0x1_0000, 4096)
            sim.run_until(lambda: len(recoveries(sim, "recouple")) >= 2,
                          max_cycles=60_000)
            assert len(recoveries(sim, "recouple")) >= 2
            assert hv.quarantined == set()
            for port in (0, 1):
                assert hv.driver.is_coupled(port)
                assert hc.supervisors[port].fault_stats.watchdog_trips == 1
            errors_before = (a.error_responses, b.error_responses)
            fresh = [a.enqueue_read(0x1800_0000, 2048),
                     b.enqueue_write(0x2800_0000, 2048)]
            sim.run_until(
                lambda: all(job.completed is not None for job in fresh),
                max_cycles=20_000)
            assert (a.error_responses, b.error_responses) == errors_before
            for engine in (a, b):
                assert engine.outstanding == 0
                assert not engine.busy
            for checker in checkers:
                assert not checker.violations
            return fingerprint(sim, hc, (a, b))

        both(run)

    @pytest.mark.parametrize("topology",
                             ("fig3a", "fig5-shares", "fig4-3port"))
    def test_hung_read_master_bounded_interference(self, topology):
        """Scenario 3: a master stops accepting R beats mid-burst.

        The rogue's backpressure stalls the shared return path until the
        watchdog decouples it; from then on the EXBAR drops its beats and
        the healthy masters finish within a bounded delay of their
        rogue-free baseline.  The rogue never drains (it refuses its own
        completions), so recovery gives up and quarantines it for good.
        """
        n_ports = 3 if topology == "fig4-3port" else 2
        shares = {0: 0.5, 1: 0.5} if topology == "fig5-shares" else None

        def run(fast, rogue_active):
            sim, hc, hv, __ = build(fast=fast, n_ports=n_ports,
                                    shares=shares)
            checker = LinkChecker(hc.port(0))
            healthy = [AxiDma(sim, f"h{port}", hc.port(port))
                       for port in range(n_ports - 1)]
            rogue_port = n_ports - 1
            # A watchdog cannot tell victim from culprit: while the rogue
            # clogs the shared return path, the victims' transactions age
            # too.  Timeouts are therefore per port, and a healthy port's
            # must exceed a neighbour's worst-case containment latency
            # (the neighbour's timeout plus the post-trip drain).
            for port in range(n_ports - 1):
                hv.driver.set_watchdog_timeout(port, 4 * TIMEOUT)
            rogue = FaultInjectingMaster(sim, "rogue", hc.port(rogue_port),
                                         fault_mode="hung_r",
                                         hang_after_beats=(8, 24), seed=5)
            for engine in healthy:
                for index in range(6):
                    engine.enqueue_read(0x1000_0000 + index * 0x1_0000,
                                        4096)
            if rogue_active:
                rogue.enqueue_read(0x3000_0000, 8192)
            sim.run_until(
                lambda: all(not engine.busy for engine in healthy),
                max_cycles=120_000)
            done_at = sim.now
            sim.run(4000)  # let recovery exhaust its retry budget
            for engine in healthy:
                assert len(engine.jobs_completed) == 6
                assert engine.error_responses == 0
                assert engine.outstanding == 0
            assert not checker.violations
            if rogue_active:
                assert rogue.is_hung
                supervisor = hc.supervisors[rogue_port]
                assert supervisor.fault_stats.watchdog_trips == 1
                assert hc.exbar.dropped_beats > 0
                assert not hv.driver.is_coupled(rogue_port)
                assert rogue_port in hv.recovery.gave_up
                assert recoveries(sim, "giveup")
            return fingerprint(sim, hc, healthy + [rogue]), done_at

        __, baseline_done = run(fast=False, rogue_active=False)
        reference, reference_done = run(fast=False, rogue_active=True)
        fast_result, fast_done = run(fast=True, rogue_active=True)
        assert reference == fast_result
        assert reference_done == fast_done
        # the analytic containment bound, not a magic slack: the healthy
        # ports' extra delay is capped by detection + drain + refill
        # (+ one reservation period when shares are armed)
        bound = ContainmentBound(
            n_ports=n_ports, nominal_burst=16, memory=ZCU102.dram,
            timeout_cycles=TIMEOUT,
            period=2048 if shares else None)
        assert (reference_done - baseline_done
                <= bound.healthy_port_delay_bound())

    def test_withheld_write_master_cured_by_reset(self):
        """Scenario 4: a master stops supplying W beats mid-burst.

        The EXBAR flushes null W beats so the shared write path drains,
        the orphaned write completes with a synthesized error, and —
        since the port drains fully — recovery resets the accelerator
        (curing the transient fault) and re-couples the port.
        """
        def run(fast):
            sim, hc, hv, __ = build(fast=fast)
            # the victim port rides out the culprit's containment window
            # (same per-port sizing rule as the hung-reader scenario)
            hv.driver.set_watchdog_timeout(0, 4 * TIMEOUT)
            healthy = AxiDma(sim, "healthy", hc.port(0))
            rogue = FaultInjectingMaster(sim, "rogue", hc.port(1),
                                         fault_mode="withheld_w",
                                         hang_after_beats=12, seed=7)
            guest = hv.create_domain("guest")
            guest.ports.append(1)
            hv.attach_accelerator("guest", 1, rogue)
            for index in range(4):
                healthy.enqueue_read(0x1000_0000 + index * 0x1_0000, 4096)
            rogue.enqueue_write(0x3000_0000, 1024)
            sim.run_until(lambda: len(recoveries(sim, "recouple")) >= 1,
                          max_cycles=60_000)
            assert hv.driver.is_coupled(1)
            assert 1 not in hv.quarantined
            supervisor = hc.supervisors[1]
            assert supervisor.fault_stats.watchdog_trips == 1
            assert supervisor.fault_stats.synth_b_beats >= 1
            assert hc.exbar.flush_beats > 0
            assert rogue.fault_mode == "none"  # reset cured the fault
            assert not rogue.is_hung
            errors_before = rogue.error_responses
            assert errors_before >= 1  # the orphaned write got its SLVERR
            job = rogue.enqueue_write(0x3000_4000, 512)
            sim.run_until(lambda: job.completed is not None,
                          max_cycles=20_000)
            assert rogue.error_responses == errors_before
            sim.run_until(lambda: not healthy.busy, max_cycles=60_000)
            assert len(healthy.jobs_completed) == 4
            assert healthy.error_responses == 0
            sim.run(256)
            return fingerprint(sim, hc, (healthy, rogue))

        both(run)

    def test_illegal_burst_rejected_at_ingest(self):
        """Scenario 5: a master issues a burst straddling a 4 KiB page.

        The ingest-time protocol guard trips before the request reaches
        the shared path: the rogue's burst is answered with DECERR and
        the healthy master's completion time is *exactly* its rogue-free
        baseline — zero interference, not merely bounded.
        """
        def run(fast, rogue_active):
            sim, hc, hv, __ = build(fast=fast, recovery=False)
            checker = LinkChecker(hc.port(0))
            healthy = AxiDma(sim, "healthy", hc.port(0))
            rogue = FaultInjectingMaster(sim, "rogue", hc.port(1),
                                         fault_mode="illegal_burst")
            for index in range(4):
                healthy.enqueue_read(0x1000_0000 + index * 0x1_0000, 4096)
            bad = None
            if rogue_active:
                # 16 beats x 16 B from 0xF80 crosses the 4 KiB boundary
                bad = rogue.enqueue_read(0x0F80, 256)
            sim.run_until(lambda: not healthy.busy, max_cycles=60_000)
            done_at = sim.now
            sim.run(1024)
            assert healthy.error_responses == 0
            assert not checker.violations
            if rogue_active:
                supervisor = hc.supervisors[1]
                assert supervisor.fault_stats.protocol_trips == 1
                events = sim.events.events(PortFaultEvent, port=1)
                assert [e.kind for e in events] == ["protocol_violation"]
                assert bad.completed is not None  # answered, with DECERR
                assert rogue.error_responses >= 16
                assert rogue.outstanding == 0
                assert not rogue.busy
                assert not hv.driver.is_coupled(1)
                assert hv.driver.faults(1) == 1
            return fingerprint(sim, hc, (healthy, rogue)), done_at

        __, baseline_done = run(fast=False, rogue_active=False)
        reference, reference_done = run(fast=False, rogue_active=True)
        fast_result, fast_done = run(fast=True, rogue_active=True)
        assert reference == fast_result
        assert reference_done == fast_done
        assert reference_done == baseline_done


class TestSmartConnectMirror:
    """The baseline interconnect's watchdog: containment, no repair."""

    def test_smartconnect_watchdog_disarmed_by_default(self):
        from repro.smartconnect import SmartConnect

        sim = Simulator("sc", clock_hz=ZCU102.pl_clock_hz)
        link = AxiLink(sim, "m", data_bytes=16)
        sc = SmartConnect(sim, "sc", 2, link)
        assert sc.timeout_cycles is None
        with pytest.raises(ConfigurationError):
            SmartConnect(sim, "sc-bad", 2, link, timeout_cycles=0)

    def test_hung_master_trips_without_recovery(self):
        """The mirror watchdog protects the healthy neighbour, but with
        no supervisor there is no orphan synthesis and no recovery: the
        rogue's transactions are never answered and its port stays dead.
        """
        from repro.smartconnect import SmartConnect

        def run(fast):
            sim = Simulator("sc-campaign", clock_hz=ZCU102.pl_clock_hz,
                            fast=fast)
            link = AxiLink(sim, "m", data_bytes=16)
            sc = SmartConnect(sim, "sc", 2, link, timeout_cycles=TIMEOUT)
            MemorySubsystem(sim, "mem", link, timing=ZCU102.dram)
            healthy = AxiDma(sim, "healthy", sc.ports[0])
            rogue = FaultInjectingMaster(sim, "rogue", sc.ports[1],
                                         fault_mode="hung_r",
                                         hang_after_beats=(8, 24), seed=5)
            rogue.enqueue_read(0x3000_0000, 8192)
            # The SmartConnect watchdog is one global knob (no per-port
            # timeouts), so the victim's grants must be younger than the
            # culprit's or both would time out together; stagger the
            # healthy master past the rogue's deadline window.
            sim.run(200)
            for index in range(4):
                healthy.enqueue_read(0x1000_0000 + index * 0x1_0000, 4096)
            sim.run_until(lambda: not healthy.busy, max_cycles=60_000)
            sim.run(1024)
            assert sc.watchdog_trips == 1
            assert sc.dropped_beats > 0
            assert len(healthy.jobs_completed) == 4
            assert healthy.error_responses == 0
            assert rogue.is_hung
            assert rogue.outstanding > 0  # nobody synthesizes completions
            events = sim.events.events(PortFaultEvent, port=1)
            assert [e.kind for e in events] == ["watchdog_timeout"]
            return ((healthy.bytes_read, len(healthy.jobs_completed)),
                    rogue.bytes_read, rogue.outstanding,
                    sc.watchdog_trips, sc.dropped_beats,
                    sc.flushed_w_beats,
                    tuple(sim.events.as_dicts()), sim.now)

        reference, fast = run(fast=False), run(fast=True)
        assert reference == fast
