"""Unit tests for the EXBAR crossbar (arbitration, routing, merging)."""

from collections import deque

from repro.axi import AxiLink, DataBeat, Resp, RespBeat
from repro.hyperconnect import HyperConnect
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.sim import Component, Simulator
from repro.system import SocSystem

from conftest import drain


class FaultySlave(Component):
    """Minimal in-order slave that answers SLVERR above a threshold."""

    def __init__(self, sim, name, link, fault_above=1 << 62):
        super().__init__(sim, name)
        self.link = link
        self.fault_above = fault_above
        self._reads = deque()
        self._writes = deque()
        self._w_buffered = 0

    def _resp_for(self, address):
        return Resp.SLVERR if address >= self.fault_above else Resp.OKAY

    def tick(self, cycle):
        if self.link.ar.can_pop():
            self._reads.append([self.link.ar.pop(), 0])
        if self.link.aw.can_pop():
            beat = self.link.aw.pop()
            self._writes.append([beat, beat.length])
        if self.link.w.can_pop():
            self.link.w.pop()
            self._w_buffered += 1
        if (self._writes and self._w_buffered >= self._writes[0][1]
                and self.link.b.can_push()):
            head = self._writes.popleft()
            self._w_buffered -= head[1]
            self.link.b.push(RespBeat(
                txn_id=head[0].txn_id,
                resp=self._resp_for(head[0].address),
                addr_beat=head[0]))
        if self._reads and self.link.r.can_push():
            head = self._reads[0]
            beat, sent = head
            head[1] += 1
            self.link.r.push(DataBeat(
                last=head[1] == beat.length, txn_id=beat.txn_id,
                resp=self._resp_for(beat.address), addr_beat=beat))
            if head[1] == beat.length:
                self._reads.popleft()


def build_with_faulty_slave(fault_above=1 << 62):
    sim = Simulator("exbar-test")
    master = AxiLink(sim, "m", data_bytes=16)
    hc = HyperConnect(sim, "hc", 2, master, period=1 << 16)
    FaultySlave(sim, "slave", master, fault_above)
    return sim, hc


class TestArbitration:
    def test_round_robin_alternates_under_backlog(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        grants = []
        soc.master_link.ar.subscribe_push(
            lambda cycle, beat: grants.append(beat.port))
        GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=4096,
                               depth=2)
        GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=4096,
                               depth=2)
        soc.sim.run(20_000)
        # fixed granularity of one: after warmup, no port granted twice
        # in a row while the other has pending requests
        steady = grants[8:]
        repeats = sum(1 for i in range(1, len(steady))
                      if steady[i] == steady[i - 1])
        assert repeats <= len(steady) // 10  # overwhelmingly alternating
        assert abs(steady.count(0) - steady.count(1)) <= 2

    def test_single_port_keeps_full_rate(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x0, 65536)
        cycles = drain(soc)
        # 4096 beats at 1/cycle + latency: near-saturation
        assert 65536 / cycles > 14.5

    def test_grant_counters(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x0, 512)
        dma.enqueue_write(0x9000, 512)
        drain(soc)
        exbar = soc.interconnect.exbar
        assert exbar.grants_ar == 2
        assert exbar.grants_aw == 2
        assert soc.interconnect.total_grants == 4


class TestRouting:
    def test_r_beats_routed_to_issuing_port(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        a = AxiDma(soc.sim, "a", soc.port(0))
        b = AxiDma(soc.sim, "b", soc.port(1))
        a.enqueue_read(0x1000, 512)
        b.enqueue_read(0x2000, 512)
        drain(soc)
        assert a.bytes_read == 512
        assert b.bytes_read == 512

    def test_routing_backlog_drains(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x0, 4096)
        drain(soc)
        assert soc.interconnect.exbar.routing_backlog == 0
        assert soc.interconnect.idle()


class TestMerging:
    def test_split_read_presents_single_burst_to_ha(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=64)
        # TS equalizes 64-beat bursts to nominal 16: 4 sub-bursts
        lasts = []
        soc.port(0).r.subscribe_push(
            lambda cycle, beat: lasts.append(beat.last))
        dma.enqueue_read(0x0, 64 * 16)
        drain(soc)
        assert len(lasts) == 64
        assert lasts.count(True) == 1 and lasts[-1]

    def test_split_write_gets_single_b(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=64)
        responses = []
        soc.port(0).b.subscribe_push(
            lambda cycle, beat: responses.append(beat))
        dma.enqueue_write(0x0, 64 * 16)
        drain(soc)
        assert len(responses) == 1

    def test_sub_burst_wlast_rewritten_for_memory(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0), burst_len=64)
        lasts = []
        soc.master_link.w.subscribe_push(
            lambda cycle, beat: lasts.append(beat.last))
        dma.enqueue_write(0x0, 64 * 16)
        drain(soc)
        # memory side sees 4 sub-bursts of 16, each with its own WLAST
        assert len(lasts) == 64
        assert lasts.count(True) == 4

    def test_merged_b_resp_is_worst_of_subs(self):
        sim, hc = build_with_faulty_slave(fault_above=0x100)
        dma = AxiDma(sim, "dma", hc.port(0), burst_len=32)
        responses = []
        hc.port(0).b.subscribe_push(
            lambda cycle, beat: responses.append(beat.resp))
        # 32-beat write split into 2 subs; second sub lands above the
        # fault threshold -> its SLVERR must surface in the merged B
        dma.enqueue_write(0x0, 32 * 16)
        sim.run_until(lambda: responses, max_cycles=20_000)
        assert responses == [Resp.SLVERR]

    def test_clean_write_merges_to_okay(self):
        sim, hc = build_with_faulty_slave()
        dma = AxiDma(sim, "dma", hc.port(0), burst_len=32)
        responses = []
        hc.port(0).b.subscribe_push(
            lambda cycle, beat: responses.append(beat.resp))
        dma.enqueue_write(0x0, 32 * 16)
        sim.run_until(lambda: responses, max_cycles=20_000)
        assert responses == [Resp.OKAY]


class TestDecouplingSafety:
    def test_read_beats_of_decoupled_port_dropped(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x0, 4096)
        soc.sim.run(30)             # requests in flight
        soc.driver.decouple(0)
        soc.sim.run(20_000)
        exbar = soc.interconnect.exbar
        assert exbar.dropped_beats > 0
        assert exbar.routing_backlog == 0   # nothing stuck

    def test_decoupled_write_flushed_with_null_beats(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_write(0x0, 4096)
        soc.sim.run(12)             # AW granted, W data still streaming
        soc.driver.decouple(0)
        soc.sim.run(20_000)
        exbar = soc.interconnect.exbar
        assert exbar.flush_beats > 0
        assert exbar.routing_backlog == 0

    def test_other_port_unaffected_by_decoupled_neighbour(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        victim = AxiDma(soc.sim, "victim", soc.port(0))
        healthy = AxiDma(soc.sim, "healthy", soc.port(1))
        victim.enqueue_write(0x0, 8192)
        soc.sim.run(12)
        soc.driver.decouple(0)
        job = healthy.enqueue_read(0x2000, 4096)
        soc.sim.run(20_000)
        assert job.completed is not None
