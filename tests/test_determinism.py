"""Determinism guarantees of the whole stack.

The kernel's two-phase commit promises that results do not depend on the
order components were registered (= tick order), and that identical
configurations produce bit-identical outcomes.  These tests check those
claims on full systems, not just toy pipelines — they are what makes
every number in EXPERIMENTS.md exactly reproducible.
"""

import pytest

from repro.masters import (
    AxiDma,
    ChaiDnnAccelerator,
    GreedyTrafficGenerator,
    RandomTrafficGenerator,
)
from repro.platforms import ZCU102
from repro.system import SocSystem


def _signature(*engines):
    """Order-insensitive fingerprint of what every engine experienced."""
    return tuple(
        (engine.name, engine.bytes_read, engine.bytes_written,
         len(engine.jobs_completed),
         engine.read_latency.count, engine.read_latency.mean,
         engine.write_latency.count, engine.write_latency.mean)
        for engine in engines)


class TestRunToRunDeterminism:
    def test_identical_contention_runs_match_exactly(self):
        def run():
            soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
            a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0),
                                       job_bytes=8192, depth=3)
            b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1),
                                       job_bytes=4096, burst_len=64,
                                       depth=2)
            soc.driver.set_bandwidth_shares({0: 0.6, 1: 0.4})
            soc.sim.run(60_000)
            return _signature(a, b)

        assert run() == run()

    def test_case_study_deterministic(self):
        def run():
            soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
            dnn = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0),
                                     scale=1 / 128)
            dma = AxiDma(soc.sim, "dma", soc.port(1))
            dnn.start()
            dma.enqueue_read(0x0, 65536)
            soc.sim.run(80_000)
            return (_signature(dnn, dma), dnn.frames_completed)

        assert run() == run()

    def test_seeded_random_traffic_deterministic(self):
        def run():
            soc = SocSystem.build(ZCU102, n_ports=2)
            gen = RandomTrafficGenerator(soc.sim, "r", soc.port(0),
                                         arrival_probability=0.03,
                                         seed=99)
            soc.sim.run(40_000)
            return _signature(gen)

        assert run() == run()


class TestRegistrationOrderIndependence:
    def test_master_construction_order_is_irrelevant(self):
        def run(swap):
            soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
            if swap:
                b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1),
                                           job_bytes=4096, depth=2)
                a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0),
                                           job_bytes=8192, depth=3)
            else:
                a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0),
                                           job_bytes=8192, depth=3)
                b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1),
                                           job_bytes=4096, depth=2)
            soc.sim.run(60_000)
            return _signature(a, b)

        assert run(False) == run(True)

    def test_probe_attachment_does_not_perturb_results(self):
        """Heisenberg check: monitors must be purely observational."""
        from repro.axi import PropagationProbe
        from repro.system import BusUtilizationMonitor

        def run(instrumented):
            soc = SocSystem.build(ZCU102, n_ports=2)
            if instrumented:
                PropagationProbe(soc.port(0).ar, soc.master_link.ar)
                BusUtilizationMonitor(soc.master_link)
            dma = AxiDma(soc.sim, "dma", soc.port(0))
            job = dma.enqueue_read(0x0, 16384)
            soc.run_until_quiescent()
            return job.latency

        assert run(False) == run(True)
