"""Unit tests for the synthetic traffic generators."""

import pytest

from repro.masters import (
    GreedyTrafficGenerator,
    PeriodicTrafficGenerator,
    RandomTrafficGenerator,
    mixed_fleet,
)
from repro.platforms import ZCU102
from repro.sim import ConfigurationError
from repro.system import SocSystem


class TestGreedy:
    def test_saturates_the_bus(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        greedy = GreedyTrafficGenerator(soc.sim, "g", soc.port(0),
                                        job_bytes=4096, depth=2)
        soc.sim.run(50_000)
        # near-saturation: at 16 B/beat, ideal is 16 B/cycle
        bandwidth = greedy.bytes_read / 50_000
        assert bandwidth > 14.0

    def test_disable_stops_replenishment(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        greedy = GreedyTrafficGenerator(soc.sim, "g", soc.port(0),
                                        job_bytes=1024, depth=2)
        soc.sim.run(2000)
        greedy.enabled = False
        soc.run_until_quiescent()
        done = len(greedy.jobs_completed)
        soc.sim.run(2000)
        assert len(greedy.jobs_completed) == done

    def test_write_fraction_mixes_traffic(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        greedy = GreedyTrafficGenerator(soc.sim, "g", soc.port(0),
                                        job_bytes=1024, depth=2,
                                        write_fraction=0.5)
        soc.sim.run(30_000)
        assert greedy.bytes_written > 0
        assert greedy.bytes_read > 0

    def test_invalid_write_fraction(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            GreedyTrafficGenerator(soc.sim, "g", soc.port(0),
                                   write_fraction=1.5)

    def test_window_wraps(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        greedy = GreedyTrafficGenerator(soc.sim, "g", soc.port(0),
                                        job_bytes=1024, depth=1,
                                        window_bytes=2048)
        soc.sim.run(20_000)
        assert len(greedy.jobs_completed) > 4  # cursor wrapped several times


class TestPeriodic:
    def test_releases_on_period(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        periodic = PeriodicTrafficGenerator(soc.sim, "p", soc.port(0),
                                            period=1000, job_bytes=256)
        soc.sim.run(5500)
        assert periodic.releases == 6  # cycles 0,1000,...,5000

    def test_no_misses_when_lightly_loaded(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        periodic = PeriodicTrafficGenerator(soc.sim, "p", soc.port(0),
                                            period=5000, job_bytes=256)
        soc.sim.run(30_000)
        assert periodic.deadline_misses == 0
        assert periodic.miss_ratio == 0.0

    def test_misses_detected_when_overloaded(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        # job takes far longer than the period
        periodic = PeriodicTrafficGenerator(soc.sim, "p", soc.port(0),
                                            period=50, job_bytes=65536)
        soc.sim.run(5000)
        assert periodic.deadline_misses > 0
        assert periodic.miss_ratio > 0.0

    def test_invalid_period(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            PeriodicTrafficGenerator(soc.sim, "p", soc.port(0),
                                     period=0, job_bytes=256)


class TestRandom:
    def test_seeded_runs_are_reproducible(self):
        def run(seed):
            soc = SocSystem.build(ZCU102, n_ports=2)
            random_gen = RandomTrafficGenerator(
                soc.sim, "r", soc.port(0), arrival_probability=0.05,
                seed=seed)
            soc.sim.run(20_000)
            return (random_gen.arrivals, random_gen.bytes_read,
                    random_gen.bytes_written)

        assert run(42) == run(42)
        assert run(42) != run(43)

    def test_sizes_are_bus_aligned(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        sizes = []
        soc.port(0).ar.subscribe_push(
            lambda cycle, beat: sizes.append(beat.length * 16))
        random_gen = RandomTrafficGenerator(
            soc.sim, "r", soc.port(0), arrival_probability=0.1,
            min_bytes=64, max_bytes=512, write_probability=0.0, seed=1)
        soc.sim.run(10_000)
        assert sizes and all(size % 16 == 0 for size in sizes)

    def test_invalid_probability(self):
        soc = SocSystem.build(ZCU102, n_ports=2)
        with pytest.raises(ConfigurationError):
            RandomTrafficGenerator(soc.sim, "r", soc.port(0),
                                   arrival_probability=0.0)


class TestMixedFleet:
    def test_one_generator_per_link(self):
        soc = SocSystem.build(ZCU102, n_ports=4)
        fleet = mixed_fleet(soc.sim, [soc.port(i) for i in range(4)])
        assert len(fleet) == 4
        soc.sim.run(10_000)
        assert any(engine.bytes_read > 0 for engine in fleet)
