"""Unit tests for AXI protocol types."""

import pytest

from repro.axi import (
    AxiVersion,
    BurstType,
    ChannelName,
    Resp,
    check_beat_size,
    check_burst_length,
)


class TestResp:
    def test_error_detection(self):
        assert Resp.SLVERR.is_error
        assert Resp.DECERR.is_error
        assert not Resp.OKAY.is_error
        assert not Resp.EXOKAY.is_error

    def test_merge_okay(self):
        assert Resp.OKAY.merged_with(Resp.OKAY) is Resp.OKAY

    def test_merge_worst_wins(self):
        assert Resp.OKAY.merged_with(Resp.SLVERR) is Resp.SLVERR
        assert Resp.SLVERR.merged_with(Resp.DECERR) is Resp.DECERR
        assert Resp.DECERR.merged_with(Resp.OKAY) is Resp.DECERR

    def test_merge_exokay_demoted(self):
        # a merged transaction is no longer a single exclusive access
        assert Resp.EXOKAY.merged_with(Resp.OKAY) is Resp.OKAY
        assert Resp.EXOKAY.merged_with(Resp.EXOKAY) is Resp.EXOKAY

    def test_merge_commutative(self):
        for left in Resp:
            for right in Resp:
                assert left.merged_with(right) is right.merged_with(left)


class TestVersion:
    def test_max_burst_lengths(self):
        assert AxiVersion.AXI3.max_burst_length == 16
        assert AxiVersion.AXI4.max_burst_length == 256


class TestChannelName:
    def test_request_channels(self):
        assert ChannelName.AR.is_request
        assert ChannelName.AW.is_request
        assert ChannelName.W.is_request
        assert not ChannelName.R.is_request
        assert not ChannelName.B.is_request


class TestValidators:
    def test_beat_sizes(self):
        for size in (1, 2, 4, 8, 16, 32, 64, 128):
            assert check_beat_size(size) == size
        for size in (0, 3, 256):
            with pytest.raises(ValueError):
                check_beat_size(size)

    def test_burst_length_incr(self):
        assert check_burst_length(256) == 256
        with pytest.raises(ValueError):
            check_burst_length(257)
        with pytest.raises(ValueError):
            check_burst_length(0)

    def test_burst_length_axi3(self):
        assert check_burst_length(16, AxiVersion.AXI3) == 16
        with pytest.raises(ValueError):
            check_burst_length(17, AxiVersion.AXI3)

    def test_burst_length_fixed_cap(self):
        with pytest.raises(ValueError):
            check_burst_length(32, AxiVersion.AXI4, BurstType.FIXED)

    def test_wrap_lengths(self):
        for length in (2, 4, 8, 16):
            assert check_burst_length(
                length, AxiVersion.AXI4, BurstType.WRAP) == length
        for length in (3, 5, 12):
            with pytest.raises(ValueError):
                check_burst_length(length, AxiVersion.AXI4, BurstType.WRAP)


class TestBurstType:
    def test_str(self):
        assert str(BurstType.INCR) == "INCR"
