"""Differential harness: every kernel path must equal the reference.

The quiescence-aware fast path (``Simulator(fast=True)``) and the
sharded parallel engine (``Simulator(parallel=N)``) ship only because
this harness proves them observationally equivalent to the reference
path on every system shape the repo models: the Fig. 3(a)
channel-latency and Fig. 3(b) access-time procedures, the Fig. 4/5 case
study, its ablation configurations, misbehaving-HA and fault-injection
scenarios, and seeded random traffic.  Each scenario is run on
``fast=False``, ``fast=True``, and (where the harness supports it)
``parallel=N``, and everything observable is compared: elapsed cycle
counts, per-engine traffic fingerprints, interconnect and memory
counters, monitor latencies, trace events, and final memory contents.

If one of these tests fails after a component change, the component's
``is_quiescent`` is lying (claiming a tick is a no-op when it is not):
fix the hook, never the harness.
"""

import pytest

from repro.axi import PropagationProbe
from repro.masters import (
    AxiDma,
    ChaiDnnAccelerator,
    DmaDescriptor,
    GreedyTrafficGenerator,
    RandomTrafficGenerator,
)
from repro.memory import FaultInjectingMemory
from repro.platforms import ZCU102
from repro.sim import Tracer
from repro.system import SocSystem
from repro.system.experiment import (
    measure_access_time,
    measure_channel_latencies,
    run_case_study,
)

INTERCONNECTS = ("hyperconnect", "smartconnect")


def _signature(*engines):
    """Order-insensitive fingerprint of what every engine experienced."""
    return tuple(
        (engine.name, engine.bytes_read, engine.bytes_written,
         len(engine.jobs_completed),
         engine.read_latency.count, engine.read_latency.mean,
         engine.write_latency.count, engine.write_latency.mean)
        for engine in engines)


def _memory_counters(memory):
    return (memory.reads_served, memory.writes_served, memory.beats_served)


def _interconnect_counters(soc):
    fabric = soc.interconnect
    counters = [getattr(fabric, "grants_ar", None),
                getattr(fabric, "grants_aw", None)]
    for supervisor in getattr(fabric, "supervisors", ()):
        counters.append((supervisor.config.issued_read,
                         supervisor.config.issued_write,
                         supervisor.stalled_on_budget,
                         supervisor.splits_performed))
    return tuple(counters)


def _both(run):
    """Run a scenario on both kernel paths and return the two results."""
    return run(fast=False), run(fast=True)


class TestFigureProcedures:
    """The paper's measurement procedures, fast vs. reference."""

    @pytest.mark.parametrize("interconnect", INTERCONNECTS)
    def test_fig3a_channel_latencies(self, interconnect):
        reference, fast = _both(
            lambda fast: measure_channel_latencies(interconnect, fast=fast))
        assert reference == fast

    @pytest.mark.parametrize("interconnect", INTERCONNECTS)
    @pytest.mark.parametrize("nbytes", (16, 4096, 65536))
    def test_fig3b_access_time(self, interconnect, nbytes):
        reference, fast = _both(
            lambda fast: measure_access_time(interconnect, nbytes,
                                             fast=fast))
        assert reference == fast

    @pytest.mark.parametrize("interconnect", INTERCONNECTS)
    def test_fig4_5_case_study(self, interconnect):
        reference, fast = _both(
            lambda fast: run_case_study(interconnect, scale=1 / 256,
                                        window_cycles=60_000, fast=fast))
        assert reference == fast

    @pytest.mark.parametrize("shares", (
        {0: 0.9, 1: 0.1},
        {0: 0.5, 1: 0.5},
        {0: 0.2, 1: 0.8},
    ), ids=("hc-90-10", "hc-50-50", "hc-20-80"))
    def test_ablation_bandwidth_shares(self, shares):
        reference, fast = _both(
            lambda fast: run_case_study("hyperconnect", shares=shares,
                                        scale=1 / 256,
                                        window_cycles=60_000, fast=fast))
        assert reference == fast

    def test_ablation_solo_workloads(self):
        for kwargs in ({"run_dma": False}, {"run_chaidnn": False}):
            reference, fast = _both(
                lambda fast: run_case_study("hyperconnect", scale=1 / 256,
                                            window_cycles=40_000,
                                            fast=fast, **kwargs))
            assert reference == fast


class TestContentionScenarios:
    """Full-system contention, down to per-engine fingerprints."""

    @pytest.mark.parametrize("interconnect", INTERCONNECTS)
    def test_two_greedy_masters(self, interconnect):
        def run(fast):
            soc = SocSystem.build(ZCU102, interconnect=interconnect,
                                  n_ports=2, period=2048, fast=fast)
            a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0),
                                       job_bytes=8192, depth=3)
            b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1),
                                       job_bytes=4096, burst_len=64,
                                       depth=2)
            soc.sim.run(50_000)
            return (_signature(a, b), _memory_counters(soc.memory),
                    _interconnect_counters(soc), soc.sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_misbehaving_ha_decoupled_mid_run(self):
        """Hypervisor-style intervention: decouple the misbehaving HA's
        port mid-run, let the victim recover, then recouple."""

        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, period=2048,
                                  fast=fast)
            victim = AxiDma(soc.sim, "victim", soc.port(0))
            rogue = GreedyTrafficGenerator(soc.sim, "rogue", soc.port(1),
                                           job_bytes=16384, burst_len=64,
                                           depth=4)
            victim.program(
                [DmaDescriptor("read", 0x1000_0000, 4096)], repeat=True)
            victim.start()
            soc.sim.run(10_000)
            soc.driver.decouple(1)
            soc.sim.run(10_000)
            soc.driver.couple(1)
            soc.sim.run(10_000)
            return (_signature(victim, rogue),
                    _memory_counters(soc.memory),
                    _interconnect_counters(soc), soc.sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_seeded_random_traffic(self):
        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
            gen = RandomTrafficGenerator(soc.sim, "rand", soc.port(0),
                                         arrival_probability=0.03,
                                         seed=99)
            dma = AxiDma(soc.sim, "dma", soc.port(1))
            dma.enqueue_read(0x0, 16384)
            soc.sim.run(30_000)
            return (_signature(gen, dma), _memory_counters(soc.memory),
                    soc.sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_fault_injection(self):
        def run(fast):
            from repro.axi.port import AxiLink
            from repro.hyperconnect import HyperConnect
            from repro.sim import Simulator

            sim = Simulator("faulty", clock_hz=ZCU102.pl_clock_hz,
                            fast=fast)
            master = AxiLink(sim, "m", data_bytes=16)
            hc = HyperConnect(sim, "hc", 2, master)
            memory = FaultInjectingMemory(sim, "mem", master,
                                          timing=ZCU102.dram,
                                          error_rate=0.05,
                                          stall_rate=0.02,
                                          stall_cycles=15, seed=7)
            responses = []
            hc.port(0).r.subscribe_push(
                lambda cycle, beat: responses.append((cycle, beat.resp)))
            dma = AxiDma(sim, "dma", hc.port(0))
            jobs = [dma.enqueue_read(i * 4096, 2048) for i in range(4)]
            sim.run_until(lambda: all(j.completed for j in jobs),
                          max_cycles=100_000)
            return (_signature(dma), memory.errors_injected,
                    memory.stalls_injected, tuple(responses), sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_freeze_window_revive_edge_wakes_fast_path(self):
        """A deterministically frozen memory quiesces the whole fabric,
        so the fast path bulk-skips the freeze — legal only because the
        memory reports the revive edge through ``next_event_cycle``.
        Without that wake hint the skip sails past ``freeze_window[1]``
        and the revival is silently never observed."""
        def run(fast):
            from repro.axi.port import AxiLink
            from repro.hyperconnect import HyperConnect
            from repro.sim import Simulator

            sim = Simulator("freeze", clock_hz=ZCU102.pl_clock_hz,
                            fast=fast)
            master = AxiLink(sim, "m", data_bytes=16)
            hc = HyperConnect(sim, "hc", 2, master)
            memory = FaultInjectingMemory(sim, "mem", master,
                                          timing=ZCU102.dram,
                                          freeze_window=(100, 2600))
            dma = AxiDma(sim, "dma", hc.port(0))
            job = dma.enqueue_read(0x1000_0000, 4096)
            sim.run(6_000)
            # no watchdog armed: the read simply waits out the freeze
            # and must complete strictly after the revive edge
            assert job.completed is not None
            assert job.completed > 2600
            if fast:
                assert sim.skip_stats.ticks_skipped > 0
            return (_signature(dma), _memory_counters(memory),
                    job.completed, sim.now)

        reference, fast = _both(run)
        assert reference == fast


class TestFutureWorkTopologies:
    """The final quiescence hooks from the ROADMAP — the in-order
    adapter for out-of-order platforms and the multi-port memory
    subsystem — checked differentially like every other component."""

    def test_ooo_adapter_stack(self):
        def run(fast):
            from repro.axi.port import AxiLink
            from repro.hyperconnect import HyperConnect, InOrderAdapter
            from repro.memory import DramTiming, OutOfOrderMemory
            from repro.sim import Simulator

            sim = Simulator("ooo", clock_hz=ZCU102.pl_clock_hz, fast=fast)
            up = AxiLink(sim, "up", data_bytes=16)
            down = AxiLink(sim, "down", data_bytes=16)
            hc = HyperConnect(sim, "hc", 2, up)
            adapter = InOrderAdapter(sim, "adapter", up, down)
            memory = OutOfOrderMemory(
                sim, "mem", down,
                timing=DramTiming(read_latency=12, write_latency=8,
                                  resp_latency=2, row_miss_penalty=24),
                lookahead=8)
            a = AxiDma(sim, "a", hc.port(0))
            b = AxiDma(sim, "b", hc.port(1))
            # alternate far-apart rows so the controller actually reorders
            for index in range(6):
                base = 0x0 if index % 2 == 0 else 0x40_0000
                a.enqueue_read(base + index * 512, 512)
            b.enqueue_write(0x20_0000, 2048)
            b.enqueue_read(0x80_0000, 1024)
            sim.run_until(lambda: not a.busy and not b.busy,
                          max_cycles=200_000)
            sim.run(64)
            return (_signature(a, b), _memory_counters(memory),
                    memory.reordered_served,
                    adapter.out_of_order_arrivals, sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_multiport_memory_subsystem(self):
        def run(fast):
            from repro.axi.port import AxiLink
            from repro.hyperconnect import HyperConnect
            from repro.memory import MultiPortMemorySubsystem
            from repro.sim import Simulator

            sim = Simulator("hp", clock_hz=ZCU102.pl_clock_hz, fast=fast)
            hp0 = AxiLink(sim, "hp0", data_bytes=16)
            hp1 = AxiLink(sim, "hp1", data_bytes=16)
            hc0 = HyperConnect(sim, "hc0", 2, hp0)
            hc1 = HyperConnect(sim, "hc1", 1, hp1)
            memory = MultiPortMemorySubsystem(sim, "mem", [hp0, hp1],
                                              timing=ZCU102.dram)
            a = AxiDma(sim, "a", hc0.port(0))
            b = AxiDma(sim, "b", hc0.port(1))
            c = AxiDma(sim, "c", hc1.port(0))
            a.enqueue_read(0x1000_0000, 8192)
            b.enqueue_write(0x2000_0000, 4096)
            c.enqueue_copy(0x3000_0000, 0x3800_0000, 4096)
            sim.run_until(lambda: not (a.busy or b.busy or c.busy),
                          max_cycles=200_000)
            sim.run(64)
            return (_signature(a, b, c), memory.beats_served,
                    tuple(memory.per_port_beats),
                    memory.queue_delay.count, memory.queue_delay.mean,
                    sim.now)

        reference, fast = _both(run)
        assert reference == fast

    def test_multiport_fast_path_skips(self):
        """The new hooks must actually unlock skipping, not just stay
        equivalent by never claiming quiescence."""
        from repro.axi.port import AxiLink
        from repro.hyperconnect import HyperConnect
        from repro.memory import MultiPortMemorySubsystem
        from repro.sim import Simulator

        sim = Simulator("hp", clock_hz=ZCU102.pl_clock_hz, fast=True)
        hp0 = AxiLink(sim, "hp0", data_bytes=16)
        hc0 = HyperConnect(sim, "hc0", 1, hp0)
        MultiPortMemorySubsystem(sim, "mem", [hp0], timing=ZCU102.dram)
        dma = AxiDma(sim, "dma", hc0.port(0))
        job = dma.enqueue_read(0x1000_0000, 16)
        sim.run_until(lambda: job.completed is not None,
                      max_cycles=50_000)
        assert job.completed is not None
        assert sim.skip_stats.ticks_skipped > 0


class TestObservables:
    """Monitors, traces, and memory contents across the two paths."""

    def test_probe_latencies_match(self):
        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
            probe_ar = PropagationProbe(soc.port(0).ar, soc.master_link.ar)
            probe_r = PropagationProbe(soc.master_link.r, soc.port(0).r)
            dma = AxiDma(soc.sim, "dma", soc.port(0))
            dma.enqueue_read(0x1000_0000, 8192)
            elapsed = soc.run_until_quiescent()
            return ((probe_ar.stats.count, probe_ar.latency_max,
                     probe_ar.latency_mean),
                    (probe_r.stats.count, probe_r.latency_max,
                     probe_r.latency_mean), elapsed)

        reference, fast = _both(run)
        assert reference == fast

    def test_trace_events_match(self):
        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
            tracer = Tracer(limit=None)
            tracer.attach_channel(soc.port(0).ar, "p0.AR")
            tracer.attach_channel(soc.master_link.ar, "m.AR")
            tracer.attach_channel(soc.port(0).r, "p0.R", on=("pop",))
            dma = AxiDma(soc.sim, "dma", soc.port(0))
            dma.enqueue_read(0x1000_0000, 1024)
            dma.enqueue_write(0x2000_0000, 1024)
            soc.run_until_quiescent()
            return tracer.as_dicts()

        reference, fast = _both(run)
        assert reference == fast
        assert reference  # the run must actually have produced events

    def test_final_memory_contents_match(self):
        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, with_store=True,
                                  fast=fast)
            soc.store.fill_pattern(0x1000_0000, 4096, seed=5)
            dma = AxiDma(soc.sim, "dma", soc.port(0))
            dma.enqueue_copy(0x1000_0000, 0x2000_0000, 4096)
            soc.run_until_quiescent()
            return soc.store.read(0x2000_0000, 4096)

        reference, fast = _both(run)
        assert reference == fast
        # and the copy itself must have happened: the destination holds
        # the same pattern a fresh store generates at the source
        from repro.memory import MemoryStore
        expected = MemoryStore()
        expected.fill_pattern(0x1000_0000, 4096, seed=5)
        assert reference == expected.read(0x1000_0000, 4096)

    def test_chaidnn_frame_timeline_matches(self):
        def run(fast):
            soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
            dnn = ChaiDnnAccelerator(soc.sim, "dnn", soc.port(0),
                                     scale=1 / 256)
            dnn.start()
            soc.sim.run(80_000)
            return (dnn.frames_completed, _signature(dnn), soc.sim.now)

        reference, fast = _both(run)
        assert reference == fast


class TestFastPathActuallySkips:
    """The equivalence results above are meaningful only if the fast
    path really does skip work on these workloads."""

    def test_latency_dominated_run_freezes(self):
        soc = SocSystem.build(ZCU102, n_ports=2, fast=True)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x1000_0000, 16)       # single-beat word read
        soc.run_until_quiescent()
        stats = soc.sim.skip_stats
        assert stats.ticks_skipped > 0
        assert stats.cycles_frozen > 0
        assert stats.cycles_total == stats.cycles_polled + stats.cycles_frozen
        assert 0.0 < stats.work_avoided_fraction <= 1.0

    def test_reference_path_records_no_skips(self):
        soc = SocSystem.build(ZCU102, n_ports=2, fast=False)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        dma.enqueue_read(0x1000_0000, 16)
        soc.run_until_quiescent()
        stats = soc.sim.skip_stats
        assert stats.ticks_skipped == 0
        assert stats.cycles_frozen == 0


# ----------------------------------------------------------------------
# randomized sweep: hypothesis searches the system-shape space for any
# workload on which the two kernel paths disagree
# ----------------------------------------------------------------------

from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

_MASTER_KINDS = ("greedy", "random", "dma", "idle")


def _attach_master(soc, port, kind, seed):
    if kind == "greedy":
        return GreedyTrafficGenerator(
            soc.sim, f"m{port}", soc.port(port),
            job_bytes=1024 << (seed % 3), burst_len=(16, 64)[seed % 2],
            depth=1 + seed % 3)
    if kind == "random":
        return RandomTrafficGenerator(
            soc.sim, f"m{port}", soc.port(port),
            arrival_probability=0.01 + 0.02 * (seed % 4),
            seed=seed)
    if kind == "dma":
        dma = AxiDma(soc.sim, f"m{port}", soc.port(port))
        for index in range(1 + seed % 3):
            if (seed + index) % 2:
                dma.enqueue_read(0x1000_0000 + index * 0x8000,
                                 512 << (seed % 3))
            else:
                dma.enqueue_write(0x2000_0000 + index * 0x8000,
                                  512 << (seed % 3))
        return dma
    return None   # idle port: pure quiescence pressure


class TestRandomizedEquivalence:
    """Property: no reachable system shape distinguishes the paths."""

    @settings(max_examples=20, deadline=None)
    @given(
        n_ports=st.integers(min_value=1, max_value=3),
        kinds=st.lists(st.sampled_from(_MASTER_KINDS), min_size=3,
                       max_size=3),
        seed=st.integers(min_value=0, max_value=999),
        period=st.sampled_from((512, 2048, 65536)),
        window=st.integers(min_value=500, max_value=5000),
        intervene=st.booleans(),
        workers=st.integers(min_value=2, max_value=4),
    )
    def test_random_system_shapes(self, n_ports, kinds, seed, period,
                                  window, intervene, workers):
        def run(fast, parallel=0):
            soc = SocSystem.build(ZCU102, n_ports=n_ports, period=period,
                                  fast=fast, parallel=parallel)
            engines = [engine for port in range(n_ports)
                       for engine in [_attach_master(
                           soc, port, kinds[port], seed + port)]
                       if engine is not None]
            soc.sim.run(window // 2)
            if intervene and n_ports > 1:
                # hypervisor-style mid-run action on the last port
                soc.driver.decouple(n_ports - 1)
                soc.sim.run(window // 4)
                soc.driver.couple(n_ports - 1)
            soc.sim.run(window // 2)
            return (_signature(*engines), _memory_counters(soc.memory),
                    _interconnect_counters(soc), soc.sim.now)

        reference, fast = _both(run)
        assert reference == fast
        sharded = run(fast=False, parallel=workers)
        assert sharded == reference


# ----------------------------------------------------------------------
# three-way corpus replay: reference / fast / parallel must all hash to
# the digest recorded when each scenario was promoted into the corpus
# ----------------------------------------------------------------------

from pathlib import Path  # noqa: E402

from repro.verify import fingerprint_digest, load_corpus  # noqa: E402
from repro.verify.harness import run_scenario  # noqa: E402

CORPUS_PATH = Path(__file__).parent / "data" / "fault_corpus.json"
CORPUS = load_corpus(CORPUS_PATH)


class TestParallelCorpusEquivalence:
    """Every promoted regression scenario, on all three kernel paths.

    ``tests/test_verify_corpus.py`` replays the corpus through the full
    oracle stack (which includes the three-way equivalence oracle); this
    class pins the stronger per-path property directly — each path's
    fingerprint independently hashes to the checked-in digest, so a
    divergence is attributed to the guilty path instead of surfacing as
    a generic oracle failure.
    """

    @pytest.mark.parametrize("entry", CORPUS, ids=lambda e: e.name)
    def test_corpus_digests_per_path(self, entry):
        reference = run_scenario(entry.scenario, fast=False)
        assert fingerprint_digest(reference) == entry.digest
        fast = run_scenario(entry.scenario, fast=True)
        assert fingerprint_digest(fast) == entry.digest, "fast path drifted"
        for workers in (2, 4):
            sharded = run_scenario(entry.scenario, fast=False,
                                   parallel=workers)
            assert fingerprint_digest(sharded) == entry.digest, (
                f"parallel={workers} drifted")

    @pytest.mark.parametrize("entry", CORPUS[:2], ids=lambda e: e.name)
    def test_corpus_digests_threads_backend(self, entry):
        """Same property with a real worker pool instead of the inline
        backend the auto heuristic picks on small hosts."""
        from repro.verify.harness import build_system, run_system

        system = build_system(entry.scenario, fast=False, parallel=3)
        system.sim.parallel_backend = "threads"
        result = run_system(system)
        assert fingerprint_digest(result) == entry.digest

    @pytest.mark.parametrize("entry", CORPUS[:2], ids=lambda e: e.name)
    def test_corpus_digests_processes_backend(self, entry):
        """Same property again with the processes backend requested.

        The verify fabric's shards are hub-coupled and therefore never
        process-exportable, so this replay exercises the documented
        graceful degradation (processes -> threads) end to end: the
        request must neither error nor change a single digest, and the
        resolution trail must record why it fell back.
        """
        from repro.verify.harness import build_system, run_system

        system = build_system(entry.scenario, fast=False, parallel=3,
                              parallel_backend="processes")
        result = run_system(system)
        assert fingerprint_digest(result) == entry.digest
        resolution = system.sim._parallel_engine.backend_resolution
        assert resolution["requested"] == "processes"
        assert resolution["resolved"] == "threads"
        assert "processes unavailable" in resolution["reason"]

    @pytest.mark.parametrize("entry", CORPUS[:1], ids=lambda e: e.name)
    def test_corpus_path_digests_labeled(self, entry):
        """The labeled four-way digest map agrees on every path."""
        from repro.verify import scenario_path_digests

        digests = scenario_path_digests(entry.scenario, parallel=2)
        assert set(digests) == {"reference", "fast",
                                "parallel=2:threads",
                                "parallel=2:processes"}
        assert set(digests.values()) == {entry.digest}
