"""Tests for the closed-form analysis — including bound-vs-simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    AccessTimeModel,
    HyperConnectWcrt,
    InterferenceModel,
    ReservationAnalysis,
    bandwidth_fraction,
    hyperconnect_propagation,
    improvement,
    interfering_transactions,
    read_propagation,
    smartconnect_propagation,
    supply_transactions,
    transaction_service_cycles,
    wcrt_transactions,
    worst_case_grant_delay,
    write_propagation,
)
from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import drain


class TestPropagation:
    def test_hyperconnect_values(self):
        latencies = hyperconnect_propagation()
        assert latencies == {"AR": 4, "AW": 4, "R": 2, "W": 2, "B": 2}

    def test_smartconnect_values(self):
        latencies = smartconnect_propagation()
        assert latencies == {"AR": 12, "AW": 12, "R": 11, "W": 3, "B": 2}

    def test_paper_improvement_percentages(self):
        hc = hyperconnect_propagation()
        sc = smartconnect_propagation()
        assert improvement(sc["AR"], hc["AR"]) == pytest.approx(0.666, abs=0.01)
        assert improvement(sc["R"], hc["R"]) == pytest.approx(0.818, abs=0.01)
        assert improvement(sc["W"], hc["W"]) == pytest.approx(0.333, abs=0.01)
        assert improvement(sc["B"], hc["B"]) == 0.0
        # read transaction: 74 %, write transaction: ~41 % (paper values)
        assert improvement(read_propagation(sc),
                           read_propagation(hc)) == pytest.approx(0.739,
                                                                  abs=0.01)
        assert improvement(write_propagation(sc),
                           write_propagation(hc)) >= 0.40

    def test_access_time_model_matches_simulation(self):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        for beats in (1, 16):
            soc = SocSystem.build(ZCU102, n_ports=2)
            dma = AxiDma(soc.sim, "dma", soc.port(0))
            job = dma.enqueue_read(0x0, beats * 16)
            drain(soc)
            assert job.latency == model.read_access_cycles(beats)

    def test_streaming_model_close_to_simulation(self):
        model = AccessTimeModel(hyperconnect_propagation(), ZCU102.dram)
        soc = SocSystem.build(ZCU102, n_ports=2)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        job = dma.enqueue_read(0x0, 16384)
        drain(soc)
        predicted = model.streaming_cycles(1024, 16, outstanding=8)
        assert job.latency == pytest.approx(predicted, rel=0.05)

    def test_improvement_validation(self):
        with pytest.raises(ValueError):
            improvement(0, 1)


class TestInterference:
    def test_fixed_granularity_bound(self):
        assert interfering_transactions(4, 1) == 3

    def test_variable_granularity_bound(self):
        assert interfering_transactions(4, 8) == 24

    def test_service_cycles(self):
        assert transaction_service_cycles(16) == 17

    def test_grant_delay_composition(self):
        delay = worst_case_grant_delay(3, 2, 16)
        assert delay == 2 * 2 * 17

    def test_model_ratio_greater_than_one(self):
        model = InterferenceModel(n_ports=2)
        assert model.bound_ratio() > 1.0
        assert model.hyperconnect_bound() < model.baseline_bound()

    def test_single_port_no_interference(self):
        assert interfering_transactions(1, 8) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            interfering_transactions(0)
        with pytest.raises(ValueError):
            transaction_service_cycles(0)

    def test_simulated_interference_within_bound(self):
        """One transaction under full contention never exceeds the bound."""
        soc = SocSystem.build(ZCU102, n_ports=2)
        GreedyTrafficGenerator(soc.sim, "noise", soc.port(1),
                               job_bytes=65536, depth=4)
        soc.sim.run(5000)   # interferer at full tilt
        dma = AxiDma(soc.sim, "victim", soc.port(0))
        job = dma.enqueue_read(0x0, 256)   # one equalized transaction
        soc.sim.run_until(lambda: job.completed is not None,
                          max_cycles=100_000)
        bound = HyperConnectWcrt(2, 16, ZCU102.dram).job_bound_cycles(16)
        assert job.latency <= bound
        # ... and the bound is not absurdly loose (within ~4x)
        assert bound < 4 * job.latency


class TestReservation:
    def test_bandwidth_fraction(self):
        assert bandwidth_fraction(32, 1024, 16) == 0.5

    def test_infeasible_reservation_rejected(self):
        with pytest.raises(ValueError):
            bandwidth_fraction(100, 1024, 16)

    def test_supply_blackout(self):
        assert supply_transactions(8, 1000, 1000) == 0
        assert supply_transactions(8, 1000, 2000) == 8
        assert supply_transactions(8, 1000, 3500) == 16

    def test_wcrt_single_transaction(self):
        assert wcrt_transactions(1, 4, 1000, 16) == 1000 + 16

    def test_wcrt_multiple_periods(self):
        # 10 transactions at 4/period: 2 full periods + 2 remaining
        assert wcrt_transactions(10, 4, 1000, 16) == 1000 + 2000 + 2 * 16

    @settings(max_examples=60, deadline=None)
    @given(m=st.integers(1, 64), budget=st.integers(1, 16),
           period=st.integers(100, 2000))
    def test_wcrt_dominates_brute_force(self, m, budget, period):
        """The closed form must dominate an exact worst-case replay.

        Brute-force model: the stream arrives right after a recharge was
        fully consumed; thereafter each period serves `budget`
        transactions back-to-back at its start.
        """
        service = 16
        if budget * service > period:
            return  # infeasible configurations are rejected elsewhere
        completed = 0
        time = period  # blackout
        while completed < m:
            served = min(budget, m - completed)
            time += served * service
            completed += served
            if completed < m:
                time += period - served * service
        assert wcrt_transactions(m, budget, period, service) >= time

    def test_analysis_bundle(self):
        analysis = ReservationAnalysis(budget=32, period=1024,
                                       nominal_burst=16)
        assert analysis.fraction == 0.5
        assert analysis.guaranteed_bytes(3 * 1024, 16) == 2 * 32 * 256
        assert analysis.wcrt_bytes(256 * 16, 16) > 0

    def test_for_share_matches_driver_formula(self):
        analysis = ReservationAnalysis.for_share(0.7, 2048, 16)
        assert analysis.budget == int(0.7 * 2048 / 16)

    def test_simulated_transfer_meets_wcrt_bound(self):
        """A reserved port's job finishes within the analytic WCRT."""
        period = 1024
        soc = SocSystem.build(ZCU102, n_ports=2, period=period)
        GreedyTrafficGenerator(soc.sim, "noise", soc.port(1),
                               job_bytes=65536, depth=4)
        soc.driver.set_budget(0, 16)
        soc.sim.run(2 * period)   # budget active, interferer saturating
        dma = AxiDma(soc.sim, "victim", soc.port(0))
        nbytes = 64 * 256         # 64 sub-transactions
        job = dma.enqueue_read(0x0, nbytes)
        wcrt = HyperConnectWcrt(2, 16, ZCU102.dram, budget=16,
                                period=period)
        bound = wcrt.job_bound_bytes(nbytes, 16)
        soc.sim.run(bound + 10_000)
        assert job.completed is not None
        assert job.latency <= bound


class TestHyperConnectWcrt:
    def test_unreserved_bound_linear_in_size(self):
        wcrt = HyperConnectWcrt(2, 16, ZCU102.dram)
        small = wcrt.job_bound_cycles(16)
        large = wcrt.job_bound_cycles(160)
        assert large > small
        assert large - small == 9 * (wcrt.job_bound_cycles(32) - small)

    def test_reserved_bound_at_least_unreserved(self):
        base = HyperConnectWcrt(2, 16, ZCU102.dram)
        reserved = HyperConnectWcrt(2, 16, ZCU102.dram, budget=1,
                                    period=4096)
        assert (reserved.job_bound_cycles(256)
                >= base.job_bound_cycles(256))

    def test_more_ports_larger_bound(self):
        two = HyperConnectWcrt(2, 16, ZCU102.dram)
        eight = HyperConnectWcrt(8, 16, ZCU102.dram)
        assert eight.job_bound_cycles(256) > two.job_bound_cycles(256)

    def test_validation(self):
        wcrt = HyperConnectWcrt(2, 16, ZCU102.dram)
        with pytest.raises(ValueError):
            wcrt.job_bound_cycles(0)
        with pytest.raises(ValueError):
            wcrt.job_bound_bytes(0, 16)
