"""Unit tests for the Transaction Supervisor."""

import pytest

from repro.axi import Transaction, make_read_request, make_write_request
from repro.hyperconnect import EFifoLink, PortConfig, TransactionSupervisor
from repro.sim import Channel, ConfigurationError, Simulator


def build(config=None):
    sim = Simulator("ts-test")
    link = EFifoLink(sim, "p0")
    out_ar = Channel(sim, "ts.AR", 1, None)
    out_aw = Channel(sim, "ts.AW", 1, None)
    ts = TransactionSupervisor(sim, "TS0", 0, link, out_ar, out_aw,
                               config or PortConfig())
    return sim, link, out_ar, out_aw, ts


def read_request(address=0, length=16):
    txn = Transaction("read", "m", address, length, 16)
    return make_read_request(txn, 0)


def write_request(address=0, length=16):
    txn = Transaction("write", "m", address, length, 16)
    return make_write_request(txn, 0)


class TestSplitting:
    def test_short_burst_passes_unsplit(self):
        sim, link, out_ar, __, ts = build()
        link.ar.push(read_request(length=8))
        sim.run(4)
        subs = out_ar.drain()
        assert len(subs) == 1
        assert subs[0].final_sub
        assert subs[0].parent is None

    def test_long_burst_equalized(self):
        config = PortConfig(nominal_burst=16)
        sim, link, out_ar, __, ts = build(config)
        link.ar.push(read_request(length=40))
        sim.run(8)
        subs = out_ar.drain()
        assert [sub.length for sub in subs] == [16, 16, 8]
        assert [sub.final_sub for sub in subs] == [False, False, True]
        assert all(sub.origin() is subs[0].origin() for sub in subs)
        assert ts.splits_performed == 1

    def test_sub_addresses_are_contiguous(self):
        sim, link, out_ar, __, ts = build(PortConfig(nominal_burst=4))
        link.ar.push(read_request(address=0x1000, length=12))
        sim.run(8)
        subs = out_ar.drain()
        assert [sub.address for sub in subs] == [0x1000, 0x1040, 0x1080]

    def test_port_index_stamped(self):
        sim, link, out_ar, __, ts = build()
        link.ar.push(read_request())
        sim.run(4)
        assert out_ar.pop().port == 0

    def test_writes_split_independently(self):
        sim, link, __, out_aw, ts = build(PortConfig(nominal_burst=8))
        link.aw.push(write_request(length=24))
        sim.run(8)
        subs = out_aw.drain()
        assert [sub.length for sub in subs] == [8, 8, 8]


class TestOutstandingLimit:
    def test_limit_stalls_forwarding(self):
        config = PortConfig(nominal_burst=16, max_outstanding=2)
        sim, link, out_ar, __, ts = build(config)
        link.ar.push(read_request(length=16 * 5))
        sim.run(20)
        assert len(out_ar.drain()) == 2
        assert ts.outstanding_reads == 2

    def test_completion_frees_slot(self):
        config = PortConfig(nominal_burst=16, max_outstanding=1)
        sim, link, out_ar, __, ts = build(config)
        link.ar.push(read_request(length=32))
        sim.run(10)
        assert len(out_ar.drain()) == 1
        ts.note_read_complete()
        sim.run(4)
        assert len(out_ar.drain()) == 1

    def test_reads_and_writes_tracked_separately(self):
        config = PortConfig(max_outstanding=1)
        sim, link, out_ar, out_aw, ts = build(config)
        link.ar.push(read_request())
        link.aw.push(write_request())
        sim.run(6)
        # one of each may be outstanding simultaneously
        assert len(out_ar.drain()) == 1
        assert len(out_aw.drain()) == 1

    def test_spurious_completion_raises(self):
        sim, link, __, ___, ts = build()
        with pytest.raises(ConfigurationError):
            ts.note_read_complete()
        with pytest.raises(ConfigurationError):
            ts.note_write_complete()


class TestBudget:
    def test_budget_limits_issue(self):
        config = PortConfig(budget=2)
        sim, link, out_ar, __, ts = build(config)
        ts.recharge()
        link.ar.push(read_request(length=16 * 6))
        sim.run(30)
        assert len(out_ar.drain()) == 2
        assert ts.budget_remaining == 0
        assert ts.stalled_on_budget > 0

    def test_recharge_restores_budget(self):
        config = PortConfig(budget=2, max_outstanding=16)
        sim, link, out_ar, __, ts = build(config)
        ts.recharge()
        link.ar.push(read_request(length=16 * 6))
        sim.run(30)
        ts.recharge()
        sim.run(30)
        assert ts.config.issued_read == 4

    def test_budget_counts_reads_and_writes_together(self):
        config = PortConfig(budget=3, max_outstanding=16)
        sim, link, out_ar, out_aw, ts = build(config)
        ts.recharge()
        link.ar.push(read_request(length=32))   # 2 subs
        link.aw.push(write_request(length=32))  # 2 subs
        sim.run(30)
        issued = len(out_ar.drain()) + len(out_aw.drain())
        assert issued == 3

    def test_unlimited_budget(self):
        sim, link, out_ar, __, ts = build(PortConfig(budget=None,
                                                     max_outstanding=64))
        link.ar.push(read_request(length=16 * 10))
        sim.run(40)
        assert len(out_ar.drain()) == 10

    def test_zero_budget_blocks_everything(self):
        config = PortConfig(budget=0)
        sim, link, out_ar, __, ts = build(config)
        ts.recharge()
        link.ar.push(read_request())
        sim.run(20)
        assert not out_ar.can_pop()


class TestDecouplingAndEnable:
    def test_decoupled_port_forwards_nothing(self):
        sim, link, out_ar, __, ts = build()
        link.ar.push(read_request())
        sim.step()
        link.decouple()
        sim.run(10)
        assert not out_ar.can_pop()

    def test_recouple_resumes(self):
        sim, link, out_ar, __, ts = build()
        link.ar.push(read_request())
        sim.step()
        link.decouple()
        sim.run(5)
        link.couple()
        sim.run(5)
        assert out_ar.can_pop()

    def test_disabled_ts_forwards_nothing(self):
        sim, link, out_ar, __, ts = build()
        ts.enabled = False
        link.ar.push(read_request())
        sim.run(10)
        assert not out_ar.can_pop()

    def test_reset_clears_state(self):
        config = PortConfig(budget=4)
        sim, link, out_ar, __, ts = build(config)
        ts.recharge()
        link.ar.push(read_request(length=64))
        sim.run(10)
        out_ar.drain()
        ts.reset()
        assert ts.outstanding_reads == 0
        assert ts.budget_remaining == 4


class TestConfigValidation:
    def test_invalid_nominal(self):
        with pytest.raises(ConfigurationError):
            PortConfig(nominal_burst=0).validate()

    def test_invalid_outstanding(self):
        with pytest.raises(ConfigurationError):
            PortConfig(max_outstanding=0).validate()

    def test_negative_budget(self):
        with pytest.raises(ConfigurationError):
            PortConfig(budget=-1).validate()
