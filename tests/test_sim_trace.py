"""Unit tests for the event tracer, and the golden-trace guard.

The golden-trace test pins the exact event stream (and probe readings) of
a short Fig. 3(a)-style run to a checked-in JSON file and verifies both
kernel paths reproduce it byte-for-byte — trace output is a guarded
interface, not an implementation detail.  Regenerate the golden file
after an *intentional* timing change with::

    REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_sim_trace.py
"""

import json
import os
from pathlib import Path

from repro.axi import PropagationProbe
from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.sim import Tracer
from repro.system import SocSystem

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace_fig3a.json"


class TestTracer:
    def test_record_and_read(self):
        tracer = Tracer()
        tracer.record(5, "dma", "grant", port=1)
        events = tracer.events()
        assert len(events) == 1
        assert events[0].cycle == 5
        assert events[0].source == "dma"
        assert events[0].fields == {"port": 1}

    def test_filters(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.record(2, "b", "x")
        tracer.record(3, "a", "y")
        assert len(tracer.events(source="a")) == 2
        assert len(tracer.events(kind="x")) == 2
        assert len(tracer.events(source="a", kind="y")) == 1
        assert len(tracer.events(predicate=lambda e: e.cycle > 1)) == 2

    def test_last(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.record(2, "a", "y")
        assert tracer.last().cycle == 2
        assert tracer.last(kind="x").cycle == 1
        assert tracer.last(kind="zzz") is None

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(limit=3)
        for cycle in range(5):
            tracer.record(cycle, "s", "k")
        events = tracer.events()
        assert [e.cycle for e in events] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record(1, "a", "x")
        assert len(tracer) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_dump_contains_fields(self):
        tracer = Tracer()
        tracer.record(7, "exbar", "grant", port=3)
        text = tracer.dump()
        assert "exbar" in text and "grant" in text and "port=3" in text

    def test_as_dict_round_trips_through_json(self):
        tracer = Tracer()
        tracer.record(7, "exbar", "grant", port=3, resp=None)
        payload = json.loads(tracer.to_json())
        assert payload == [{"cycle": 7, "source": "exbar", "kind": "grant",
                            "fields": {"port": 3, "resp": None}}]

    def test_to_json_is_byte_stable(self):
        def build():
            tracer = Tracer()
            tracer.record(1, "s", "k", b=2, a=1)
            tracer.record(2, "s", "k", a=1, b=2)
            return tracer.to_json()

        assert build() == build()

    def test_attach_channel_records_pushes_and_pops(self):
        from repro.sim import Channel, Simulator

        sim = Simulator("t")
        channel = Channel(sim, "ch", latency=1)
        tracer = Tracer()
        tracer.attach_channel(channel, "ch")
        channel.push(123)
        sim.step()
        channel.pop()
        kinds = [(e.kind, e.source) for e in tracer.events()]
        assert kinds == [("push", "ch"), ("pop", "ch")]

    def test_attach_channel_rejects_unknown_action(self):
        from repro.sim import Channel, Simulator
        import pytest

        sim = Simulator("t2")
        channel = Channel(sim, "ch")
        with pytest.raises(ValueError):
            Tracer().attach_channel(channel, "ch", on=("peek",))


def _capture_fig3a(fast: bool) -> str:
    """Short Fig. 3(a)-style run: one equalized read + one paced write,
    with channel tracing and propagation probes attached."""
    soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
    tracer = Tracer(limit=None)
    tracer.attach_channel(soc.port(0).ar, "p0.AR")
    tracer.attach_channel(soc.port(0).aw, "p0.AW")
    tracer.attach_channel(soc.master_link.ar, "m.AR", on=("push",))
    tracer.attach_channel(soc.port(0).r, "p0.R", on=("pop",))
    tracer.attach_channel(soc.port(0).b, "p0.B", on=("pop",))
    probes = {
        "AR": PropagationProbe(soc.port(0).ar, soc.master_link.ar),
        "R": PropagationProbe(soc.master_link.r, soc.port(0).r),
        "B": PropagationProbe(soc.master_link.b, soc.port(0).b),
    }
    dma = AxiDma(soc.sim, "dma", soc.port(0), w_beat_gap=16)
    dma.enqueue_read(0x1000_0000, 16 * ZCU102.hp_data_bytes)
    dma.enqueue_write(0x2000_0000, 16 * ZCU102.hp_data_bytes)
    elapsed = soc.run_until_quiescent()
    snapshot = {
        "elapsed": elapsed,
        "events": tracer.as_dicts(),
        "probes": {name: {"count": probe.stats.count,
                          "max": probe.latency_max,
                          "mean": probe.latency_mean}
                   for name, probe in sorted(probes.items())},
    }
    return json.dumps(snapshot, indent=2, sort_keys=True)


class TestGoldenTrace:
    def test_both_kernel_paths_match_the_golden_trace(self):
        reference = _capture_fig3a(fast=False)
        fast = _capture_fig3a(fast=True)
        assert reference == fast
        if os.environ.get("REGEN_GOLDEN"):
            GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN_PATH.write_text(reference + "\n", encoding="utf-8")
        golden = GOLDEN_PATH.read_text(encoding="utf-8")
        assert reference + "\n" == golden
        # sanity: the run produced real traffic, not an empty trace
        assert json.loads(reference)["events"]
