"""Unit tests for the event tracer."""

from repro.sim import Tracer


class TestTracer:
    def test_record_and_read(self):
        tracer = Tracer()
        tracer.record(5, "dma", "grant", port=1)
        events = tracer.events()
        assert len(events) == 1
        assert events[0].cycle == 5
        assert events[0].source == "dma"
        assert events[0].fields == {"port": 1}

    def test_filters(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.record(2, "b", "x")
        tracer.record(3, "a", "y")
        assert len(tracer.events(source="a")) == 2
        assert len(tracer.events(kind="x")) == 2
        assert len(tracer.events(source="a", kind="y")) == 1
        assert len(tracer.events(predicate=lambda e: e.cycle > 1)) == 2

    def test_last(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.record(2, "a", "y")
        assert tracer.last().cycle == 2
        assert tracer.last(kind="x").cycle == 1
        assert tracer.last(kind="zzz") is None

    def test_ring_buffer_drops_oldest(self):
        tracer = Tracer(limit=3)
        for cycle in range(5):
            tracer.record(cycle, "s", "k")
        events = tracer.events()
        assert [e.cycle for e in events] == [2, 3, 4]
        assert tracer.dropped == 2

    def test_disabled_is_noop(self):
        tracer = Tracer(enabled=False)
        tracer.record(1, "a", "x")
        assert len(tracer) == 0

    def test_clear(self):
        tracer = Tracer()
        tracer.record(1, "a", "x")
        tracer.clear()
        assert len(tracer) == 0

    def test_dump_contains_fields(self):
        tracer = Tracer()
        tracer.record(7, "exbar", "grant", port=3)
        text = tracer.dump()
        assert "exbar" in text and "grant" in text and "port=3" in text
