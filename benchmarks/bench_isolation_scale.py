"""Isolation at scale: oracle cost per domain count under fault storms.

The tenant-isolation tentpole claims containment stays graceful as the
domain count grows: dozens of tenants, several simultaneously faulted,
healthy tenants bit-identical to their fault-free baseline.  This bench
measures what that verification costs — full oracle-stack evaluation
(reference + fast kernel + fault-free baseline + isolation checks) of a
mixed fault storm at 8, 16, 32 and 64 domains — and gates the scaling
shape: simulated cycles/sec through the 64-domain storm must stay within
an order of magnitude of the 8-domain rate (per-port work is constant,
so the kernel must not degrade super-linearly with tenant count).
"""

import time

from repro.verify import DEFAULT_CHECKS, evaluate_scenario
from repro.verify.paramspace import compile_isolation

from conftest import publish, wall_ms

DOMAIN_COUNTS = (8, 16, 32, 64)
N_FAULTED = {8: 2, 16: 4, 32: 8, 64: 8}
#: 64-domain cycles/sec floor relative to the 8-domain rate
SCALING_FLOOR = 0.1


def _storm(n: int):
    return compile_isolation({"n_domains": n, "n_faulted": N_FAULTED[n],
                              "mix": "mixed", "seed": 3,
                              "job_bytes": 256})


def _sweep():
    points = []
    for n in DOMAIN_COUNTS:
        scenario = _storm(n)
        started = time.perf_counter()
        result = evaluate_scenario(scenario, checks=DEFAULT_CHECKS,
                                   parallel=0)
        elapsed = time.perf_counter() - started
        points.append({
            "domains": n,
            "faulted": len(scenario.rogue_indices),
            "cycles": result.now,
            "wall_s": elapsed,
            "cycles_per_sec": result.now / elapsed if elapsed else 0.0,
            "tripped": sum(1 for t in result.trips if t),
        })
    return points


def test_isolation_scale(benchmark):
    points = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    rows = ["domains   faulted   tripped      cycles     wall s   cyc/s"]
    for p in points:
        rows.append(f"{p['domains']:>7}   {p['faulted']:>7}   "
                    f"{p['tripped']:>7}   {p['cycles']:>9}   "
                    f"{p['wall_s']:>8.2f}   {p['cycles_per_sec']:>9.0f}")
    small, large = points[0], points[-1]
    ratio = (large["cycles_per_sec"] / small["cycles_per_sec"]
             if small["cycles_per_sec"] else 0.0)
    rows.append(f"64-domain throughput is {ratio:.2f}x the 8-domain rate")
    publish("isolation_scale", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        "cycles_per_sec": large["cycles_per_sec"],
        "speedup": None,
        "scaling_ratio_64_over_8": ratio,
        "domains": list(DOMAIN_COUNTS),
    })
    benchmark.extra_info.update({"scaling_ratio_64_over_8": ratio})

    # correctness gates: every storm contains exactly its rogues
    for p in points:
        assert p["tripped"] == p["faulted"], p
    # scaling gate: per-port work is constant, so cycle throughput must
    # not collapse as the tenant count grows
    assert ratio >= SCALING_FLOOR, (
        f"64-domain oracle throughput fell to {ratio:.2f}x of the "
        f"8-domain rate (floor {SCALING_FLOOR}x)")
