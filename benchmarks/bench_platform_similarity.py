"""Cross-platform check: Zynq-7020 vs ZCU102.

The paper: "The experiments have been conducted on both a Xilinx ZYNQ
Z-7020 platform and a Xilinx ZCU102 ZYNQ Ultrascale+ platform, obtaining
similar results.  Due to lack of space, we report just the results for
the ZYNQ Ultrascale+ platform."  This bench runs the headline latency
experiments on the Zynq-7020 model (100 MHz, 64-bit port, DDR3 timing)
and verifies that the same conclusions hold there.
"""

from repro.analysis import improvement
from repro.platforms import ZCU102, ZYNQ_7020
from repro.system import measure_access_time, measure_channel_latencies

from conftest import publish, wall_ms


def _run_both_platforms():
    results = {}
    for platform in (ZYNQ_7020, ZCU102):
        hc = measure_channel_latencies("hyperconnect", platform)
        sc = measure_channel_latencies("smartconnect", platform)
        word = platform.hp_data_bytes
        access = {
            "1 word": (measure_access_time("hyperconnect", word, platform),
                       measure_access_time("smartconnect", word, platform)),
            "16-word": (
                measure_access_time("hyperconnect", 16 * word, platform),
                measure_access_time("smartconnect", 16 * word, platform)),
        }
        results[platform.name] = (hc, sc, access)
    return results


def test_platform_similarity(benchmark):
    results = benchmark.pedantic(_run_both_platforms, rounds=1,
                                 iterations=1)

    rows = ["platform    d_AR (HC/SC)  d_R (HC/SC)  "
            "1-word gain  16-word gain"]
    gains = {}
    for name, (hc, sc, access) in results.items():
        word_gain = improvement(access["1 word"][1], access["1 word"][0])
        burst_gain = improvement(access["16-word"][1],
                                 access["16-word"][0])
        gains[name] = (word_gain, burst_gain)
        rows.append(f"{name:<12}{hc.ar}/{sc.ar:<11}{hc.r}/{sc.r:<10}"
                    f"{word_gain:>11.1%}{burst_gain:>13.1%}")
    publish("platform_similarity", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        # latency probes; headline: ZCU102 1-word HC-over-SC gain holds
        "speedup": 1.0 / (1.0 - gains["ZCU102"][0]),
        "gains": {name: {"word": word, "burst": burst}
                  for name, (word, burst) in gains.items()},
    })
    benchmark.extra_info.update(
        {name: {"word": word, "burst": burst}
         for name, (word, burst) in gains.items()})

    # "similar results": identical structural latencies, and access-time
    # improvements within a few points of each other across platforms
    for name, (hc, sc, __) in results.items():
        assert (hc.ar, hc.r) == (4, 2), name
        assert (sc.ar, sc.r) == (12, 11), name
    z7, zu = gains["Zynq-7020"], gains["ZCU102"]
    assert abs(z7[0] - zu[0]) < 0.05
    assert abs(z7[1] - zu[1]) < 0.05
