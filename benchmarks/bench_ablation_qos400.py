"""Ablation: PS-side QoS regulation vs fabric-side reservation.

Reproduces the paper's Related-Work argument quantitatively: an ARM
QoS-400-style regulator in the PS sees the merged stream after the
FPGA-PS interface, where "there are no signals to distinguish" individual
HAs — so no setting of its aggregate throttle can hand a starved HA a
larger share.  The HyperConnect, regulating *before* the merge, can.
"""

from repro.axi import AxiLink
from repro.masters import GreedyTrafficGenerator
from repro.memory import MemorySubsystem, PsQosRegulator
from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.smartconnect import SmartConnect, smartconnect_master_link
from repro.system import SocSystem

from conftest import publish, wall_ms

WINDOW = 150_000


def _qos_run(rate_budget):
    sim = Simulator("qos-bench", clock_hz=ZCU102.pl_clock_hz)
    fabric = smartconnect_master_link(sim, "fabric")
    ps = AxiLink(sim, "ps", data_bytes=16)
    interconnect = SmartConnect(sim, "sc", 2, fabric)
    PsQosRegulator(sim, "qos400", fabric, ps, rate_budget=rate_budget,
                   rate_period=1024)
    MemorySubsystem(sim, "mem", ps, timing=ZCU102.dram)
    victim = GreedyTrafficGenerator(sim, "victim", interconnect.port(0),
                                    job_bytes=4096, burst_len=16, depth=4)
    bully = GreedyTrafficGenerator(sim, "bully", interconnect.port(1),
                                   job_bytes=4096, burst_len=256, depth=4)
    sim.run(WINDOW)
    total = victim.bytes_read + bully.bytes_read
    return victim.bytes_read / total, total / WINDOW


def _hyperconnect_run(victim_share):
    soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
    victim = GreedyTrafficGenerator(soc.sim, "victim", soc.port(0),
                                    job_bytes=4096, burst_len=16, depth=4)
    bully = GreedyTrafficGenerator(soc.sim, "bully", soc.port(1),
                                   job_bytes=4096, burst_len=256, depth=4)
    soc.driver.set_bandwidth_shares(
        {0: victim_share, 1: round(1 - victim_share, 4)})
    soc.sim.run(WINDOW)
    total = victim.bytes_read + bully.bytes_read
    return victim.bytes_read / total, total / WINDOW


def _run_all():
    results = {"QoS off": _qos_run(None)}
    for budget in (8, 4, 2, 1):
        results[f"QoS budget={budget}/1024"] = _qos_run(budget)
    for share in (0.5, 0.7, 0.9):
        results[f"HC reserve {share:.0%}"] = _hyperconnect_run(share)
    return results


def test_ablation_qos400(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)

    rows = ["configuration           victim share   bus util (B/cycle)"]
    for label, (share, utilisation) in results.items():
        rows.append(f"{label:<24}{share:>11.1%}{utilisation:>15.1f}")
    elapsed = wall_ms(benchmark)
    simulated = len(results) * WINDOW
    publish("ablation_qos400", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # headline: victim share fabric-side vs best PS-side setting
        "speedup": (results["HC reserve 90%"][0]
                    / max(share for label, (share, __) in results.items()
                          if label.startswith("QoS"))),
        "victim_share": {label: share
                         for label, (share, __) in results.items()},
    })
    benchmark.extra_info.update(
        {label: share for label, (share, __) in results.items()})

    # shape: no PS-side setting lifts the victim above ~30 %, and the
    # harder the throttle, the more aggregate bandwidth dies; fabric-side
    # reservation delivers the configured share directly
    for label, (share, __) in results.items():
        if label.startswith("QoS"):
            assert share < 0.3, label
    assert results["QoS budget=1/1024"][1] < \
        0.4 * results["QoS off"][1]
    assert abs(results["HC reserve 70%"][0] - 0.7) < 0.05
    assert abs(results["HC reserve 90%"][0] - 0.9) < 0.05
