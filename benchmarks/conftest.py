"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper.  Besides the
pytest-benchmark wall-clock numbers, each bench renders the paper-style
result table: it is printed (visible with ``-s``) and also written to
``benchmarks/results/<name>.txt`` so the reproduction record persists
regardless of terminal capture.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    banner = f"== {name} " + "=" * max(0, 66 - len(name))
    output = f"{banner}\n{text.rstrip()}\n"
    print("\n" + output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output, encoding="utf-8")
