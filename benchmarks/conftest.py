"""Shared helpers for the benchmark harness.

Every benchmark reproduces one table or figure of the paper.  Besides the
pytest-benchmark wall-clock numbers, each bench renders the paper-style
result table: it is printed (visible with ``-s``) and also written to
``benchmarks/results/<name>.txt`` so the reproduction record persists
regardless of terminal capture.

Each bench additionally publishes a machine-readable sidecar,
``benchmarks/results/<name>.json``, with a small uniform schema::

    {"benchmark": <name>, "wall_ms": <float|null>,
     "cycles_per_sec": <float|null>, "speedup": <float|null>, ...}

``wall_ms`` is the wall-clock cost of the bench's measured body,
``cycles_per_sec`` the simulated-cycle throughput where the bench runs
fixed windows (null where the bench measures latencies or estimates
resources), and ``speedup`` the bench's headline ratio (HC over SC, fast
over reference kernel, ...; null where no single ratio is the headline).
The CI perf-smoke job diffs these sidecars against committed baselines.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--parallel", type=int, default=None, metavar="N",
        help="run every bench with the sharded tick engine at N workers "
             "(sets REPRO_PARALLEL, which SocSystem.build reads; "
             "0 = serial)")


def pytest_configure(config):
    workers = config.getoption("--parallel")
    if workers is not None:
        os.environ["REPRO_PARALLEL"] = str(workers)


def publish(name: str, text: str, metrics: Optional[dict] = None) -> None:
    """Print a result table and persist it under benchmarks/results/.

    When ``metrics`` is given, the uniform JSON sidecar is written next
    to the text table.  ``wall_ms``, ``cycles_per_sec`` and ``speedup``
    are always present in the sidecar (null when not supplied) so
    downstream tooling can rely on the schema.
    """
    banner = f"== {name} " + "=" * max(0, 66 - len(name))
    output = f"{banner}\n{text.rstrip()}\n"
    print("\n" + output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(output, encoding="utf-8")
    if metrics is not None:
        payload = {"benchmark": name,
                   "wall_ms": None, "cycles_per_sec": None,
                   "speedup": None}
        payload.update(metrics)
        (RESULTS_DIR / f"{name}.json").write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8")


def wall_ms(benchmark) -> Optional[float]:
    """Mean wall-clock milliseconds of the measured body, if available.

    Reads the pytest-benchmark stats recorded by the ``benchmark.pedantic``
    call that every bench performs; returns None when the fixture ran in
    a mode without stats (e.g. ``--benchmark-disable``).
    """
    try:
        return float(benchmark.stats.stats.mean) * 1e3
    except AttributeError:
        return None
