"""Fig. 3(a): propagation latency on each AXI channel.

Paper result (ZCU102): HyperConnect 4/4/2/2/2 cycles on AR/AW/R/W/B versus
SmartConnect 12/12/11/3/2 — improvements of 66 %, 66 %, 82 %, 33 % and 0 %,
and hence 74 % per read transaction and 41 % per write transaction.
"""

from repro.analysis import improvement
from repro.system import measure_channel_latencies

from conftest import publish, wall_ms

#: the paper's measured values (cycles), used as the oracle
PAPER_HC = {"AR": 4, "AW": 4, "R": 2, "W": 2, "B": 2}
PAPER_SC = {"AR": 12, "AW": 12, "R": 11, "W": 3, "B": 2}


def _run_both():
    return (measure_channel_latencies("hyperconnect"),
            measure_channel_latencies("smartconnect"))


def test_fig3a_channel_latency(benchmark):
    hc, sc = benchmark.pedantic(_run_both, rounds=1, iterations=1)
    hc_map, sc_map = hc.as_dict(), sc.as_dict()

    rows = ["channel  HyperConnect  SmartConnect  improvement   paper"]
    for channel in ("AR", "AW", "R", "W", "B"):
        gain = improvement(sc_map[channel], hc_map[channel])
        paper_gain = improvement(PAPER_SC[channel], PAPER_HC[channel])
        rows.append(f"{channel:<9}{hc_map[channel]:>12}"
                    f"{sc_map[channel]:>14}{gain:>12.0%}"
                    f"{paper_gain:>8.0%}")
    rows.append(f"{'read txn':<9}{hc.read_total:>12}{sc.read_total:>14}"
                f"{improvement(sc.read_total, hc.read_total):>12.0%}"
                f"{0.74:>8.0%}")
    rows.append(f"{'write txn':<9}{hc.write_total:>12}"
                f"{sc.write_total:>14}"
                f"{improvement(sc.write_total, hc.write_total):>12.0%}"
                f"{0.41:>8.0%}")
    publish("fig3a_channel_latency", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        # latency probes, not a throughput run: cycles/sec not meaningful
        "speedup": sc.read_total / hc.read_total,
        "hc": hc_map, "sc": sc_map,
    })

    benchmark.extra_info.update(
        {f"hc_{k}": v for k, v in hc_map.items()})
    benchmark.extra_info.update(
        {f"sc_{k}": v for k, v in sc_map.items()})

    # shape criteria: the simulated values ARE the paper's values
    assert hc_map == PAPER_HC
    assert sc_map == PAPER_SC
