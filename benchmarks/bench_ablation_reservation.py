"""Ablation: reservation linearity and decoupling.

Design choice under test: the TS reservation ([10]) limits each port to a
budget of sub-transactions per period.  The delivered bandwidth fraction
should track the configured fraction linearly across the range, with
decoupling as the hard-zero endpoint — this is what makes the HC-X-Y
configurations of Fig. 5 composable.

The sweep rides the declarative campaign machinery: a
:class:`~repro.verify.paramspace.ParamSpace` over the configured share
compiles (via the registered ``reservation`` grid's compiler) into
greedy two-port :class:`Scenario` objects, and the campaign runner
streams them through the harness with the liveness/protocol oracles
armed — so the ablation now *also* asserts the sweep is oracle-clean,
not just linear.
"""

from repro.verify import CampaignConfig, ParamSpace, run_campaign
from repro.verify.paramspace import compile_reservation

from conftest import publish, wall_ms

WINDOW = 150_000
PERIOD = 2048
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)

#: the reservation axis: decoupled endpoint plus the linear range
SPACE = ParamSpace({
    "share0": (0.0,) + FRACTIONS,
    "period": (PERIOD,),
    "job_bytes": (16384,),
    "horizon": (WINDOW,),
}, mode="full")


def _delivered_fraction(record):
    limited, free = record["engines"]
    total = limited["bytes_read"] + free["bytes_read"]
    return limited["bytes_read"] / max(1, total)


def _run_sweep():
    scenarios = [compile_reservation(a) for a in SPACE]
    result = run_campaign(
        scenarios, workers=0,
        config=CampaignConfig(checks=("liveness", "protocol"),
                              embed_scenario=False))
    assert result.ok, result.counts
    return {scenario.shares[0]: _delivered_fraction(record)
            for scenario, record in zip(scenarios, result.records)}


def test_ablation_reservation(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = ["configured share   delivered share    error"]
    for configured, delivered in sorted(results.items()):
        label = "decoupled" if configured == 0.0 else f"{configured:.0%}"
        rows.append(f"{label:>16}   {delivered:>15.1%}"
                    f"{delivered - configured:>+9.1%}")
    elapsed = wall_ms(benchmark)
    simulated = len(results) * WINDOW
    publish("ablation_reservation", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # linearity bench: no single ratio is the headline
        "delivered": {str(k): v for k, v in results.items()},
    })
    benchmark.extra_info.update(
        {str(k): v for k, v in results.items()})

    # shape: hard zero when decoupled; linear tracking elsewhere
    assert results[0.0] == 0.0
    for fraction in FRACTIONS:
        assert abs(results[fraction] - fraction) < 0.04
    ordered = [results[f] for f in sorted(results)]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
