"""Ablation: reservation linearity and decoupling.

Design choice under test: the TS reservation ([10]) limits each port to a
budget of sub-transactions per period.  The delivered bandwidth fraction
should track the configured fraction linearly across the range, with
decoupling as the hard-zero endpoint — this is what makes the HC-X-Y
configurations of Fig. 5 composable.
"""

from repro.masters import GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish, wall_ms

WINDOW = 150_000
PERIOD = 2048
FRACTIONS = (0.1, 0.25, 0.5, 0.75, 0.9)


def _delivered_fraction(configured):
    soc = SocSystem.build(ZCU102, n_ports=2, period=PERIOD)
    limited = GreedyTrafficGenerator(soc.sim, "limited", soc.port(0),
                                     job_bytes=16384, depth=4)
    free = GreedyTrafficGenerator(soc.sim, "free", soc.port(1),
                                  job_bytes=16384, depth=4)
    if configured == 0.0:
        soc.driver.decouple(0)
    else:
        soc.driver.set_bandwidth_shares(
            {0: configured, 1: round(1.0 - configured, 4)})
    soc.sim.run(WINDOW)
    total = limited.bytes_read + free.bytes_read
    return limited.bytes_read / max(1, total)


def _run_sweep():
    results = {0.0: _delivered_fraction(0.0)}
    for fraction in FRACTIONS:
        results[fraction] = _delivered_fraction(fraction)
    return results


def test_ablation_reservation(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = ["configured share   delivered share    error"]
    for configured, delivered in sorted(results.items()):
        label = "decoupled" if configured == 0.0 else f"{configured:.0%}"
        rows.append(f"{label:>16}   {delivered:>15.1%}"
                    f"{delivered - configured:>+9.1%}")
    elapsed = wall_ms(benchmark)
    simulated = len(results) * WINDOW
    publish("ablation_reservation", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # linearity bench: no single ratio is the headline
        "delivered": {str(k): v for k, v in results.items()},
    })
    benchmark.extra_info.update(
        {str(k): v for k, v in results.items()})

    # shape: hard zero when decoupled; linear tracking elsewhere
    assert results[0.0] == 0.0
    for fraction in FRACTIONS:
        assert abs(results[fraction] - fraction) < 0.04
    ordered = [results[f] for f in sorted(results)]
    assert all(a < b for a, b in zip(ordered, ordered[1:]))
