"""Fig. 4: CHaiDNN and HA_DMA performance in isolation.

Paper result: "no performance degradation is experienced when using the
AXI HyperConnect with respect to the use of the AXI SmartConnect" — for
both the CHaiDNN frame rate and the DMA round rate, each running alone.

Workload scale: 1/64 of the full case study (see EXPERIMENTS.md); rate
*ratios* between interconnects are scale-invariant.
"""

from repro.system import run_case_study

from conftest import publish, wall_ms

WINDOW = 800_000
SCALE = 1 / 64


def _run_all():
    return {
        "dnn_hc": run_case_study("hyperconnect", run_dma=False,
                                 scale=SCALE, window_cycles=WINDOW),
        "dnn_sc": run_case_study("smartconnect", run_dma=False,
                                 scale=SCALE, window_cycles=WINDOW),
        "dma_hc": run_case_study("hyperconnect", run_chaidnn=False,
                                 scale=SCALE, window_cycles=WINDOW),
        "dma_sc": run_case_study("smartconnect", run_chaidnn=False,
                                 scale=SCALE, window_cycles=WINDOW),
    }


def test_fig4_isolation(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    dnn_hc = results["dnn_hc"].chaidnn_fps
    dnn_sc = results["dnn_sc"].chaidnn_fps
    dma_hc = results["dma_hc"].dma_rate
    dma_sc = results["dma_sc"].dma_rate

    rows = [
        "HA (in isolation)       HyperConnect    SmartConnect    HC/SC",
        f"CHaiDNN (scaled fps)    {dnn_hc:>12.0f}    {dnn_sc:>12.0f}"
        f"    {dnn_hc / dnn_sc:>5.2f}",
        f"HA_DMA (rounds/s)       {dma_hc:>12.0f}    {dma_sc:>12.0f}"
        f"    {dma_hc / dma_sc:>5.2f}",
        "",
        f"(frames: HC {results['dnn_hc'].chaidnn_frames} / "
        f"SC {results['dnn_sc'].chaidnn_frames}; "
        f"rounds: HC {results['dma_hc'].dma_rounds} / "
        f"SC {results['dma_sc'].dma_rounds} "
        f"in {WINDOW} cycles)",
    ]
    elapsed = wall_ms(benchmark)
    simulated = len(results) * WINDOW
    publish("fig4_isolation", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        "speedup": dnn_hc / dnn_sc,   # HC vs SC frame rate (isolation)
        "dma_ratio": dma_hc / dma_sc,
    })

    benchmark.extra_info.update({
        "chaidnn_fps_hc": dnn_hc, "chaidnn_fps_sc": dnn_sc,
        "dma_rate_hc": dma_hc, "dma_rate_sc": dma_sc,
    })

    # shape criteria: no degradation with the HyperConnect (the HC may be
    # marginally better thanks to its lower latency — the paper's bars
    # are equal within plot resolution)
    assert dnn_hc >= dnn_sc * 0.95
    assert dma_hc >= dma_sc * 0.95
    assert results["dnn_hc"].chaidnn_frames >= 10
    assert results["dma_hc"].dma_rounds >= 10
