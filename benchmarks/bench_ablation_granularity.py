"""Ablation: round-robin granularity and worst-case interference.

Design choice under test: the EXBAR arbitrates with a *fixed granularity
of one transaction* per port per round-cycle.  The paper observes that
state-of-the-art interconnects use a variable granularity ``g``, which
inflates the worst-case interference per transaction to ``g * (N - 1)``
transactions.  This bench sweeps ``g`` on the SmartConnect model and
measures a victim's worst observed transaction latency against a
saturating neighbour, alongside the EXBAR (HyperConnect) as the g=1
reference point.
"""

from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish, wall_ms

GRANULARITIES = (1, 2, 4, 8)
PROBES = 60


def _victim_worst_latency(interconnect, granularity=None):
    """Worst single-transaction latency with the *arbiter* contended.

    The noise master keeps far more requests pending than the memory
    controller's command queue admits, so requests pile up at the
    arbitration point — the regime where grant granularity matters.
    """
    kwargs = {}
    if granularity is not None:
        kwargs["max_granularity"] = granularity
    soc = SocSystem.build(ZCU102, interconnect=interconnect, n_ports=2,
                          **kwargs)
    soc.memory.command_depth = 2   # shallow controller queue
    GreedyTrafficGenerator(soc.sim, "noise", soc.port(1),
                           job_bytes=16384, burst_len=16, depth=4,
                           max_outstanding=32, id_bits=6)
    soc.sim.run(4000)
    victim = AxiDma(soc.sim, "victim", soc.port(0))
    worst = 0
    for index in range(PROBES):
        job = victim.enqueue_read(0x1000 * index, 256)  # one 16-beat txn
        soc.sim.run_until(lambda: job.completed is not None,
                          max_cycles=200_000)
        worst = max(worst, job.latency)
        soc.sim.run(137)   # decorrelate probe phase from the noise
    return worst


def _run_sweep():
    results = {"EXBAR (g=1)": _victim_worst_latency("hyperconnect")}
    for granularity in GRANULARITIES:
        results[f"SC g={granularity}"] = _victim_worst_latency(
            "smartconnect", granularity)
    return results


def test_ablation_granularity(benchmark):
    results = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = ["arbiter          worst victim txn latency (cycles)"]
    for label, worst in results.items():
        rows.append(f"{label:<17}{worst:>10}")
    publish("ablation_granularity", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        # latency-bound probes; headline: worst-case ratio g=8 vs EXBAR
        "speedup": results["SC g=8"] / results["EXBAR (g=1)"],
        "worst_latency": results,
    })
    benchmark.extra_info.update(results)

    # shape: worst case grows monotonically with granularity ...
    sweep = [results[f"SC g={g}"] for g in GRANULARITIES]
    assert all(a <= b for a, b in zip(sweep, sweep[1:]))
    assert sweep[-1] > sweep[0]
    # ... and the fixed-granularity EXBAR (plus its lower pipeline
    # latency) beats every variable configuration
    assert results["EXBAR (g=1)"] <= min(sweep)
