"""Ablation: burst equalization and bandwidth fairness.

Design choice under test: the Transaction Supervisor equalizes every
request to a nominal burst size ([11]).  Without it, per-transaction
round-robin hands each master one *transaction* per round regardless of
its size, so a master issuing 256-beat bursts receives ~16x the bandwidth
of a 16-beat master.  The bench disables equalization by raising the
nominal burst above the largest request and compares byte shares.
"""

from repro.masters import GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish, wall_ms

WINDOW = 150_000


def _share_ratio(nominal_burst):
    """big-master bytes / small-master bytes under a given nominal."""
    soc = SocSystem.build(ZCU102, n_ports=2)
    for port in (0, 1):
        soc.driver.set_nominal_burst(port, nominal_burst)
        # keep the in-flight *data* comparable: the outstanding limit
        # counts sub-transactions, whose size is the nominal burst
        soc.driver.set_max_outstanding(
            port, max(2, 8 * 16 // min(nominal_burst, 256)))
    big = GreedyTrafficGenerator(soc.sim, "big", soc.port(0),
                                 job_bytes=16384, burst_len=256, depth=4)
    small = GreedyTrafficGenerator(soc.sim, "small", soc.port(1),
                                   job_bytes=16384, burst_len=16, depth=4)
    soc.sim.run(WINDOW)
    return big.bytes_read / max(1, small.bytes_read)


def _run_sweep():
    return {nominal: _share_ratio(nominal)
            for nominal in (16, 32, 64, 256)}


def test_ablation_equalization(benchmark):
    ratios = benchmark.pedantic(_run_sweep, rounds=1, iterations=1)

    rows = ["nominal burst   bandwidth ratio (256-beat : 16-beat master)"]
    for nominal, ratio in ratios.items():
        note = "(equalized)" if nominal == 16 else (
            "(equalization off)" if nominal == 256 else "")
        rows.append(f"{nominal:>13}   {ratio:>10.2f}  {note}")
    elapsed = wall_ms(benchmark)
    simulated = len(ratios) * WINDOW
    publish("ablation_equalization", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # headline: unfairness factor removed by equalization
        "speedup": ratios[256] / ratios[16],
        "ratios": {str(k): v for k, v in ratios.items()},
    })
    benchmark.extra_info.update(
        {str(k): v for k, v in ratios.items()})

    # shape: with equalization at the small master's burst size the
    # split is fair; unfairness grows as equalization coarsens
    assert abs(ratios[16] - 1.0) < 0.05
    assert ratios[16] < ratios[32] < ratios[64] < ratios[256]
    assert ratios[256] > 4.0   # the [11] pathology reproduced
