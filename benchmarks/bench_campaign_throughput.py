"""Campaign throughput: scenarios/sec across worker processes.

The ROADMAP's traffic shape is many independent simulations at
throughput, not one big one — so scenarios/sec through the campaign
runner is a first-class benchmark.  A >= 500-scenario pairwise grid of
deliberately tiny flat scenarios (the registered ``throughput`` grid)
streams through the runner once on 1 worker and once on ``WORKERS``
processes:

* the verdict digests must be identical — parallelism must never change
  results (this is asserted unconditionally, on any machine);
* with >= ``WORKERS`` CPUs available, the multi-process run must clear a
  3x scenarios/sec speedup (asserted only where the hardware can
  physically deliver it; the CI runner qualifies).

The JSON sidecar records both rates, the speedup, and the CPU count so
the perf-smoke baseline compare can gate on them.
"""

import os

from repro.verify import CampaignConfig, grid_scenarios, run_campaign

from conftest import publish, wall_ms

WORKERS = 4
SPEEDUP_FLOOR = 3.0
MIN_SCENARIOS = 500


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:   # pragma: no cover - non-Linux fallback
        return os.cpu_count() or 1


def _run_pair():
    scenarios, checks = grid_scenarios("throughput")
    assert len(scenarios) >= MIN_SCENARIOS
    config = CampaignConfig(checks=checks, embed_scenario=False)
    serial = run_campaign(scenarios, workers=1, config=config)
    fanned = run_campaign(scenarios, workers=WORKERS, config=config)
    return serial, fanned


def test_campaign_throughput(benchmark):
    serial, fanned = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    cpus = _cpus()
    speedup = fanned.scenarios_per_sec / serial.scenarios_per_sec

    rows = [
        "workers   scenarios/s      wall s   verdicts",
        f"{1:>7}   {serial.scenarios_per_sec:>11.2f}   "
        f"{serial.wall_s:>9.1f}   {dict(serial.counts)}",
        f"{WORKERS:>7}   {fanned.scenarios_per_sec:>11.2f}   "
        f"{fanned.wall_s:>9.1f}   {dict(fanned.counts)}",
        f"speedup {speedup:.2f}x on {cpus} CPUs "
        f"({len(serial.records)} scenarios, digests "
        + ("identical" if serial.digest == fanned.digest else "DIVERGED")
        + ")",
    ]
    publish("campaign_throughput", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        "cycles_per_sec": None,
        "speedup": speedup,
        "scenarios": len(serial.records),
        "scenarios_per_sec_1w": serial.scenarios_per_sec,
        "scenarios_per_sec_4w": fanned.scenarios_per_sec,
        "cpus": cpus,
        "digests_identical": serial.digest == fanned.digest,
    })
    benchmark.extra_info.update({
        "speedup": speedup, "cpus": cpus,
        "scenarios_per_sec_1w": serial.scenarios_per_sec,
        "scenarios_per_sec_4w": fanned.scenarios_per_sec,
    })

    # correctness gates: every verdict passes, parallelism changes nothing
    assert serial.ok, serial.counts
    assert fanned.ok, fanned.counts
    assert serial.digest == fanned.digest
    # perf gate: only where the hardware can physically deliver it
    if cpus >= WORKERS:
        assert speedup >= SPEEDUP_FLOOR, (
            f"{WORKERS}-worker campaign speedup regressed below "
            f"{SPEEDUP_FLOOR}x: {speedup:.2f}x on {cpus} CPUs")
