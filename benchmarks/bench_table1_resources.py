"""Table I: resource consumption on the ZCU102 (N = 2 configuration).

Paper result: HyperConnect 3020 LUT / 1289 FF / 0 BRAM / 0 DSP versus
SmartConnect 3785 LUT / 7137 FF / 0 / 0 — the slim open architecture
undercuts the closed baseline on both logic and registers while adding
functionality the baseline lacks.
"""

from repro.platforms import ZCU102
from repro.resources import (
    hyperconnect_breakdown,
    hyperconnect_resources,
    resource_table,
    smartconnect_resources,
)

from conftest import publish, wall_ms


def _estimate():
    return (hyperconnect_resources(2), smartconnect_resources(2),
            hyperconnect_breakdown(2))


def test_table1_resources(benchmark):
    hc, sc, breakdown = benchmark.pedantic(_estimate, rounds=1,
                                           iterations=1)
    lines = [resource_table(ZCU102, n_ports=2), "",
             "HyperConnect per-module breakdown (estimator):"]
    for module, estimate in breakdown.items():
        lines.append(f"  {module:<26}{estimate.lut:>6} LUT"
                     f"{estimate.ff:>7} FF")
    lines.append("")
    lines.append("scaling trend (ports -> LUT/FF):")
    for n_ports in (2, 4, 8, 16):
        hc_n = hyperconnect_resources(n_ports)
        sc_n = smartconnect_resources(n_ports)
        lines.append(f"  N={n_ports:<3} HC {hc_n.lut:>6}/{hc_n.ff:<6} "
                     f"SC {sc_n.lut:>6}/{sc_n.ff:<6}")
    publish("table1_resources", "\n".join(lines), metrics={
        "wall_ms": wall_ms(benchmark),
        # static estimator; headline: FF economy vs SmartConnect
        "speedup": sc.ff / hc.ff,
        "hc": {"lut": hc.lut, "ff": hc.ff},
        "sc": {"lut": sc.lut, "ff": sc.ff},
    })

    benchmark.extra_info.update({
        "hc_lut": hc.lut, "hc_ff": hc.ff,
        "sc_lut": sc.lut, "sc_ff": sc.ff,
    })

    # Table I, verbatim
    assert (hc.lut, hc.ff, hc.bram, hc.dsp) == (3020, 1289, 0, 0)
    assert (sc.lut, sc.ff, sc.bram, sc.dsp) == (3785, 7137, 0, 0)
    assert hc.lut < sc.lut and hc.ff < sc.ff
