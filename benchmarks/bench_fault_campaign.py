"""Fault-injection campaign: containment and recovery under the watchdog.

Not a figure from the paper, but the quantitative record of the paper's
central robustness claim: a misbehaving HA (or slave) is detected by the
Transaction Supervisor's watchdog, contained by decoupling, and either
recovered by hypervisor policy or left quarantined — while healthy HAs
keep their service within a bounded delay of the fault-free baseline.

Five seeded scenarios run on both kernel paths; the table reports the
trip cycle, the recovery outcome, and the interference experienced by
the healthy master (cycles past its rogue-free completion time).
"""

from repro.analysis import ContainmentBound
from repro.axi import AxiLink
from repro.hyperconnect import HyperConnect
from repro.hypervisor import Hypervisor, RecoveryPolicy
from repro.masters import AxiDma, FaultInjectingMaster
from repro.memory import FaultInjectingMemory, MemorySubsystem
from repro.platforms import ZCU102
from repro.sim import Simulator
from repro.sim.events import PortFaultEvent, PortRecoveryEvent

from conftest import publish, wall_ms

TIMEOUT = 400
POLICY = RecoveryPolicy(max_retries=3, backoff_cycles=256,
                        backoff_factor=2)

SCENARIOS = ("dead_slave", "stalled_slave", "hung_r_master",
             "withheld_w_master", "illegal_burst")


def _build(fast, memory_cls=MemorySubsystem, memory_kwargs=None,
           healthy_timeout=TIMEOUT):
    sim = Simulator("campaign", clock_hz=ZCU102.pl_clock_hz, fast=fast)
    link = AxiLink(sim, "m", data_bytes=16)
    hc = HyperConnect(sim, "hc", 2, link)
    memory_cls(sim, "mem", link, timing=ZCU102.dram,
               **(memory_kwargs or {}))
    hv = Hypervisor(hc)
    hv.default_recovery_policy = POLICY
    hv.driver.set_watchdog_timeout(0, healthy_timeout)
    hv.driver.set_watchdog_timeout(1, TIMEOUT)
    hv.enable_fault_recovery()
    return sim, hc, hv


def _healthy_work(engine):
    for index in range(6):
        engine.enqueue_read(0x1000_0000 + index * 0x1_0000, 4096)


def _baseline_done(fast):
    """Healthy-master completion time with no fault in the system."""
    sim, hc, __ = _build(fast)
    healthy = AxiDma(sim, "healthy", hc.port(0))
    _healthy_work(healthy)
    sim.run_until(lambda: not healthy.busy, max_cycles=200_000)
    return sim.now


def run_scenario(name, fast):
    """One scenario end-to-end; returns the metrics row."""
    memory_cls, memory_kwargs = MemorySubsystem, None
    if name == "dead_slave":
        memory_cls = FaultInjectingMemory
        memory_kwargs = {"dead_after_beats": 64, "seed": 3}
    elif name == "stalled_slave":
        memory_cls = FaultInjectingMemory
        memory_kwargs = {"freeze_window": (1500, 2300)}
    sim, hc, hv = _build(fast, memory_cls, memory_kwargs,
                         healthy_timeout=4 * TIMEOUT)

    healthy = AxiDma(sim, "healthy", hc.port(0))
    _healthy_work(healthy)
    rogue = FaultInjectingMaster(
        sim, "rogue", hc.port(1),
        fault_mode={"hung_r_master": "hung_r",
                    "withheld_w_master": "withheld_w",
                    "illegal_burst": "illegal_burst"}.get(name, "none"),
        hang_after_beats=(8, 24), seed=5)
    guest = hv.create_domain("guest")
    guest.ports.append(1)
    hv.attach_accelerator("guest", 1, rogue)
    if name == "illegal_burst":
        rogue.enqueue_read(0x0F80, 256)       # straddles a 4 KiB page
    elif name == "withheld_w_master":
        rogue.enqueue_write(0x3000_0000, 1024)
    elif name == "hung_r_master":
        rogue.enqueue_read(0x3000_0000, 8192)
    else:
        # slave-fault scenarios: the port-1 master is an innocent victim
        # with enough queued work to be mid-flight when the slave fails
        for index in range(6):
            rogue.enqueue_read(0x3000_0000 + index * 0x1_0000, 4096)

    if name == "dead_slave":
        # nobody finishes against a dead slave; run a fixed window and
        # report the containment outcome instead of a completion time
        sim.run(24_000)
        healthy_done = None
    else:
        sim.run_until(lambda: not healthy.busy, max_cycles=200_000)
        healthy_done = sim.now
        sim.run(8_000)  # let recovery retries / giveups play out

    faults = sim.events.events(PortFaultEvent)
    recoveries = sim.events.events(PortRecoveryEvent)
    recoupled = any(e.kind == "recouple" for e in recoveries)
    gave_up = any(e.kind == "giveup" for e in recoveries)
    return {
        "healthy_done": healthy_done,
        "healthy_jobs": len(healthy.jobs_completed),
        "healthy_errors": healthy.error_responses,
        "trip_cycle": faults[0].cycle if faults else None,
        "trip_kinds": sorted({e.kind for e in faults}),
        "trips": sum(s.fault_stats.trips for s in hc.supervisors),
        "synth_beats": sum(s.fault_stats.synth_r_beats
                           + s.fault_stats.synth_b_beats
                           for s in hc.supervisors),
        "outcome": ("recovered" if recoupled
                    else "quarantined" if gave_up or faults else "clean"),
        "elapsed": sim.now,
    }


def _run_all():
    results = {}
    for fast in (False, True):
        key = "fast" if fast else "reference"
        results[key] = {"baseline": _baseline_done(fast)}
        for name in SCENARIOS:
            results[key][name] = run_scenario(name, fast)
    return results


def test_fault_campaign(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    reference, fast = results["reference"], results["fast"]
    # both kernel paths must tell exactly the same story
    assert reference == fast

    baseline = reference["baseline"]

    def interference(row):
        if row["healthy_done"] is None:
            return None             # whole fabric lost its only slave
        return row["healthy_done"] - baseline

    rows = ["scenario            trip@    outcome      healthy jobs"
            "    interference (cycles)"]
    for name in SCENARIOS:
        row = reference[name]
        delta = interference(row)
        shown = "n/a" if delta is None else f"{delta:+d}"
        rows.append(
            f"{name:<18}  {str(row['trip_cycle']):>6}  "
            f"{row['outcome']:<11}  {row['healthy_jobs']:>12}"
            f"    {shown:>8}")
    rows.append("")
    rows.append(f"(healthy baseline completes at cycle {baseline}; "
                f"watchdog timeout {TIMEOUT} cycles, victim ports "
                f"{4 * TIMEOUT}; policy: {POLICY.max_retries} retries, "
                f"{POLICY.backoff_cycles}-cycle exponential backoff)")
    elapsed = wall_ms(benchmark)
    simulated = sum(reference[name]["elapsed"] for name in SCENARIOS) * 2
    publish("fault_campaign", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # containment record, not a perf comparison
        "outcomes": {name: reference[name]["outcome"]
                     for name in SCENARIOS},
        "paths_identical": reference == fast,
    })

    benchmark.extra_info.update({
        name: {"outcome": reference[name]["outcome"],
               "interference": interference(reference[name])}
        for name in SCENARIOS})

    # shape criteria
    for name in SCENARIOS:
        row = reference[name]
        assert row["trips"] >= 1, name         # every fault is detected
        if name != "dead_slave":               # healthy HAs always finish
            assert row["healthy_jobs"] == 6, name
            assert row["healthy_errors"] == 0, name
    # slave faults victimize the rogue port too; its transactions still
    # get answered (synthesized), and the port outcome matches the fault
    assert reference["dead_slave"]["outcome"] == "quarantined"
    assert reference["stalled_slave"]["outcome"] == "recovered"
    assert reference["hung_r_master"]["outcome"] == "quarantined"
    assert reference["withheld_w_master"]["outcome"] == "recovered"
    # the illegal burst never enters the fabric, so the port drains
    # immediately and the reset cures the (non-persistent) fault
    assert reference["illegal_burst"]["outcome"] == "recovered"
    # bounded interference for contained master faults, on both kernel
    # paths, against the analytic containment bound (no magic slack)
    bound = ContainmentBound(
        n_ports=2, nominal_burst=16, memory=ZCU102.dram,
        timeout_cycles=TIMEOUT).healthy_port_delay_bound()
    for path in (reference, fast):
        hung_delta = (path["hung_r_master"]["healthy_done"]
                      - path["baseline"])
        assert 0 <= hung_delta <= bound
    # ...and zero interference for an ingest-rejected illegal burst
    assert reference["illegal_burst"]["healthy_done"] == baseline
