"""Engineering benchmark: simulation kernel throughput.

Not a paper figure — this tracks the simulator's own speed (simulated
cycles per host second) on the reference two-master contention system, so
performance regressions in the kernel or the models are caught by the
benchmark history.  Uses real pytest-benchmark rounds since the run is
short and repeatable.
"""

from repro.masters import GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish

CYCLES = 20_000


def _build():
    soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
    GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=8192,
                           depth=4)
    GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=8192,
                           depth=4)
    soc.driver.set_bandwidth_shares({0: 0.5, 1: 0.5})
    return soc


def test_sim_throughput(benchmark):
    def run_window():
        # building is part of the measured cost but is negligible next
        # to 20k cycles of two saturating masters
        soc = _build()
        soc.sim.run(CYCLES)
        return soc

    soc = benchmark(run_window)
    cycles_per_second = CYCLES / benchmark.stats["mean"]
    publish("sim_throughput",
            f"reference contention system: "
            f"{cycles_per_second:,.0f} simulated cycles / host second\n"
            f"(window {CYCLES} cycles, mean wall time "
            f"{benchmark.stats['mean'] * 1e3:.1f} ms)")
    benchmark.extra_info["cycles_per_second"] = cycles_per_second
    assert cycles_per_second > 10_000   # sanity floor
