"""Engineering benchmark: simulation kernel throughput.

Not a paper figure — this tracks the simulator's own speed (simulated
cycles per host second) on two workloads:

* the reference two-master contention system (every component busy, so
  the quiescence fast path has little to skip) — pytest-benchmark rounds;
* a latency-dominated single-word DMA read on the Fig. 3(a) topology,
  measured under both kernel paths.  This is the workload class the fast
  path exists for: after the ~330-cycle transaction the system is frozen
  and the kernel bulk-skips the rest of the window.  The bench asserts
  the >= 2x speedup promised in the fast path's acceptance criteria.

Both sections are persisted to ``benchmarks/results/sim_throughput.txt``.
"""

import time

from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish

CYCLES = 20_000
WORD_READ_CYCLES = 50_000

#: sections accumulated across this module's tests so the published
#: sim_throughput.txt carries the full before/after record
_SECTIONS = {}


def _publish_all():
    order = ("contention", "fast-path")
    text = "\n".join(_SECTIONS[key] for key in order if key in _SECTIONS)
    publish("sim_throughput", text)


def _build():
    soc = SocSystem.build(ZCU102, n_ports=2, period=2048)
    GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=8192,
                           depth=4)
    GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=8192,
                           depth=4)
    soc.driver.set_bandwidth_shares({0: 0.5, 1: 0.5})
    return soc


def test_sim_throughput(benchmark):
    def run_window():
        # building is part of the measured cost but is negligible next
        # to 20k cycles of two saturating masters
        soc = _build()
        soc.sim.run(CYCLES)
        return soc

    soc = benchmark(run_window)
    if benchmark.stats is None:
        # --benchmark-disable (CI smoke mode): one manually timed window
        started = time.perf_counter()
        run_window()
        mean = time.perf_counter() - started
    else:
        mean = benchmark.stats["mean"]
    cycles_per_second = CYCLES / mean
    _SECTIONS["contention"] = (
        f"reference contention system: "
        f"{cycles_per_second:,.0f} simulated cycles / host second\n"
        f"(window {CYCLES} cycles, mean wall time {mean * 1e3:.1f} ms)")
    _publish_all()
    if benchmark.stats is not None:
        benchmark.extra_info["cycles_per_second"] = cycles_per_second
    assert cycles_per_second > 10_000   # sanity floor


def _measure_word_read(fast: bool, rounds: int = 3) -> float:
    """Best-of-N simulated-cycles/host-second for the Fig. 3(a) word read."""
    best = float("inf")
    for _ in range(rounds):
        soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        job = dma.enqueue_read(0x1000_0000, ZCU102.hp_data_bytes)
        started = time.perf_counter()
        soc.sim.run(WORD_READ_CYCLES)
        best = min(best, time.perf_counter() - started)
        assert job.completed is not None       # same result on both paths
        if fast:
            assert soc.sim.skip_stats.cycles_frozen > 0
    return WORD_READ_CYCLES / best


def test_fast_path_speedup_on_latency_dominated_run():
    reference = _measure_word_read(fast=False)
    fast = _measure_word_read(fast=True)
    speedup = fast / reference
    _SECTIONS["fast-path"] = (
        f"latency-dominated word read ({WORD_READ_CYCLES} cycle window):\n"
        f"  fast=False (reference): {reference:,.0f} cycles / host second\n"
        f"  fast=True  (skipping):  {fast:,.0f} cycles / host second\n"
        f"  speedup: {speedup:.1f}x")
    _publish_all()
    # the acceptance bar for the quiescence fast path
    assert speedup >= 2.0
    # and the reference path must still clear the historical sanity floor
    assert reference > 10_000
