"""Engineering benchmark: simulation kernel throughput.

Not a paper figure — this tracks the simulator's own speed (simulated
cycles per host second) on two workloads:

* the reference two-master contention system, measured under BOTH kernel
  paths with a warm best-of-N timer that excludes construction.  This
  workload is fully saturated (one data beat moves on the shared bus
  every cycle), so the event-heap fast path has nothing to freeze — the
  section therefore tracks the raw per-cycle model cost and doubles as a
  divergence check: both paths must produce byte-identical traffic.
* a latency-dominated single-word DMA read on the Fig. 3(a) topology.
  This is the workload class the fast path exists for: after the
  ~330-cycle transaction the system is frozen and the kernel bulk-skips
  the rest of the window.  The bench asserts the >= 2x speedup promised
  in the fast path's acceptance criteria.

Both sections are persisted to ``benchmarks/results/sim_throughput.txt``
and, machine-readably, ``benchmarks/results/sim_throughput.json``.  The
CI perf-smoke job runs this module with ``SIM_THROUGHPUT_CYCLES`` set to
a short window and compares the sidecar against the committed
``sim_throughput.baseline.json``.
"""

import gc
import os
import time

from repro.masters import AxiDma, GreedyTrafficGenerator
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish

CYCLES = int(os.environ.get("SIM_THROUGHPUT_CYCLES", "20000"))
ROUNDS = int(os.environ.get("SIM_THROUGHPUT_ROUNDS", "3"))
WORD_READ_CYCLES = 50_000

#: sections accumulated across this module's tests so the published
#: sim_throughput record carries the full before/after picture
_SECTIONS = {}
_METRICS = {}


def _publish_all():
    order = ("contention", "fast-path")
    text = "\n".join(_SECTIONS[key] for key in order if key in _SECTIONS)
    contention = _METRICS.get("contention", {})
    word_read = _METRICS.get("word_read", {})
    publish("sim_throughput", text, metrics={
        "wall_ms": contention.get("wall_ms"),
        "cycles_per_sec": contention.get("reference"),
        "speedup": word_read.get("speedup", contention.get("speedup")),
        "contention": contention or None,
        "word_read": word_read or None,
    })


def _build(fast=False):
    soc = SocSystem.build(ZCU102, n_ports=2, period=2048, fast=fast)
    a = GreedyTrafficGenerator(soc.sim, "a", soc.port(0), job_bytes=8192,
                               depth=4)
    b = GreedyTrafficGenerator(soc.sim, "b", soc.port(1), job_bytes=8192,
                               depth=4)
    soc.driver.set_bandwidth_shares({0: 0.5, 1: 0.5})
    return soc, a, b


def _measure_contention(fast, rounds=ROUNDS):
    """Warm best-of-N cycles/host-second, construction excluded.

    Returns ``(cycles_per_sec, signature)`` where the signature captures
    the traffic outcome so the two kernel paths can be diffed.
    """
    best = float("inf")
    signature = None
    for _ in range(rounds):
        soc, a, b = _build(fast=fast)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            started = time.perf_counter()
            soc.sim.run(CYCLES)
            best = min(best, time.perf_counter() - started)
        finally:
            if gc_was_enabled:
                gc.enable()
        outcome = (a.bytes_read, a.error_responses,
                   b.bytes_read, b.error_responses)
        assert signature is None or signature == outcome
        signature = outcome
    return CYCLES / best, signature


def test_sim_throughput(benchmark):
    def run_window():
        soc, __, __b = _build()
        soc.sim.run(CYCLES)
        return soc

    benchmark(run_window)

    # warm, construction-free A/B measurement of both kernel paths
    reference, ref_signature = _measure_contention(fast=False)
    fast, fast_signature = _measure_contention(fast=True)
    assert fast_signature == ref_signature   # zero divergence
    speedup = fast / reference

    _SECTIONS["contention"] = (
        f"reference contention system ({CYCLES} cycle window, saturated "
        f"shared bus,\nbest of {ROUNDS} warm rounds, build excluded):\n"
        f"  fast=False (reference): {reference:,.0f} cycles / host second\n"
        f"  fast=True  (event heap): {fast:,.0f} cycles / host second "
        f"({speedup:.2f}x)\n"
        f"  traffic signature identical on both paths: {ref_signature}")
    _METRICS["contention"] = {
        "window_cycles": CYCLES,
        "rounds": ROUNDS,
        "reference": reference,
        "fast": fast,
        "speedup": speedup,
        "wall_ms": CYCLES / reference * 1e3,
        "signatures_equal": True,
    }
    _publish_all()
    if benchmark.stats is not None:
        benchmark.extra_info["cycles_per_second"] = reference
    assert reference > 10_000   # sanity floor
    # the saturated workload leaves the fast path nothing to skip; it
    # must still stay within a modest constant factor of the reference
    assert speedup > 0.5


def _measure_word_read(fast: bool, rounds: int = 3) -> float:
    """Best-of-N simulated-cycles/host-second for the Fig. 3(a) word read."""
    best = float("inf")
    for _ in range(rounds):
        soc = SocSystem.build(ZCU102, n_ports=2, fast=fast)
        dma = AxiDma(soc.sim, "dma", soc.port(0))
        job = dma.enqueue_read(0x1000_0000, ZCU102.hp_data_bytes)
        started = time.perf_counter()
        soc.sim.run(WORD_READ_CYCLES)
        best = min(best, time.perf_counter() - started)
        assert job.completed is not None       # same result on both paths
        if fast:
            assert soc.sim.skip_stats.cycles_frozen > 0
    return WORD_READ_CYCLES / best


def test_fast_path_speedup_on_latency_dominated_run():
    reference = _measure_word_read(fast=False)
    fast = _measure_word_read(fast=True)
    speedup = fast / reference
    _SECTIONS["fast-path"] = (
        f"latency-dominated word read ({WORD_READ_CYCLES} cycle window):\n"
        f"  fast=False (reference): {reference:,.0f} cycles / host second\n"
        f"  fast=True  (skipping):  {fast:,.0f} cycles / host second\n"
        f"  speedup: {speedup:.1f}x")
    _METRICS["word_read"] = {
        "window_cycles": WORD_READ_CYCLES,
        "reference": reference,
        "fast": fast,
        "speedup": speedup,
    }
    _publish_all()
    # the acceptance bar for the quiescence fast path
    assert speedup >= 2.0
    # and the reference path must still clear the historical sanity floor
    assert reference > 10_000
