"""Fig. 5: CHaiDNN + interfering DMA under contention.

Paper result: with the SmartConnect the greedy HA_DMA "can take most of
the bandwidth while HA_CHaiDNN can dispose of just a little portion"; the
HyperConnect's HC-X-Y reservation configurations (90-10, 70-30, 50-50,
30-70, 10-90) redistribute the bandwidth, with HC-90-10 bringing CHaiDNN
close to its isolation performance.

``test_tlm_fastforward`` additionally runs the saturated-contention
HC-50-50 row under the transaction-level fast-forward mode
(``tlm=True``, see ``repro.sim.tlm``) against the plain fast kernel and
asserts the >= 2x wall-clock acceptance floor; its sidecar carries the
TLM engine's skip counters.  ``SIM_FIG5_TLM_CYCLES`` overrides its
window for CI quick modes.
"""

import os
import time

from repro.system import run_case_study

from conftest import publish, wall_ms

WINDOW = 800_000
SCALE = 1 / 64
SHARES = [(90, 10), (70, 30), (50, 50), (30, 70), (10, 90)]
TLM_WINDOW = int(os.environ.get("SIM_FIG5_TLM_CYCLES", str(WINDOW)))


def _run_all():
    results = {}
    results["isolation"] = run_case_study(
        "hyperconnect", run_dma=False, scale=SCALE, window_cycles=WINDOW)
    results["dma_isolation"] = run_case_study(
        "hyperconnect", run_chaidnn=False, scale=SCALE,
        window_cycles=WINDOW)
    results["smartconnect"] = run_case_study(
        "smartconnect", scale=SCALE, window_cycles=WINDOW)
    for x, y in SHARES:
        results[f"HC-{x}-{y}"] = run_case_study(
            "hyperconnect", shares={0: x / 100, 1: y / 100},
            scale=SCALE, window_cycles=WINDOW)
    return results


def test_fig5_contention(benchmark):
    results = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    iso_fps = results["isolation"].chaidnn_fps
    iso_dma = results["dma_isolation"].dma_rate

    rows = ["configuration    CHaiDNN fps (vs isolation)   "
            "DMA rounds/s (vs isolation)"]

    def row(label, result, dma_reference):
        fps = result.chaidnn_fps
        dma = result.dma_rate
        return (f"{label:<17}{fps:>9.0f} ({fps / iso_fps:>4.0%})      "
                f"{dma:>12.0f} ({dma / dma_reference:>4.0%})")

    rows.append(f"{'isolation':<17}{iso_fps:>9.0f} (100%)      "
                f"{iso_dma:>12.0f} (100%)")
    rows.append(row("SmartConnect", results["smartconnect"], iso_dma))
    for x, y in SHARES:
        rows.append(row(f"HC-{x}-{y}", results[f"HC-{x}-{y}"], iso_dma))
    elapsed = wall_ms(benchmark)
    simulated = len(results) * WINDOW
    publish("fig5_contention", "\n".join(rows), metrics={
        "wall_ms": elapsed,
        "cycles_per_sec": (simulated / (elapsed / 1e3)
                           if elapsed else None),
        # headline: reservation restores CHaiDNN vs. SmartConnect chaos
        "speedup": (results["HC-90-10"].chaidnn_fps
                    / results["smartconnect"].chaidnn_fps),
        "chaidnn_fps": {key: value.chaidnn_fps
                        for key, value in results.items()},
    })

    benchmark.extra_info.update(
        {key: {"fps": value.chaidnn_fps, "dma": value.dma_rate}
         for key, value in results.items()})

    # shape criteria
    sc_fps = results["smartconnect"].chaidnn_fps
    assert sc_fps < 0.35 * iso_fps, "SC must show starvation"
    assert results["HC-90-10"].chaidnn_fps >= 0.85 * iso_fps
    fps_series = [results[f"HC-{x}-{y}"].chaidnn_fps for x, y in SHARES]
    dma_series = [results[f"HC-{x}-{y}"].dma_rate for x, y in SHARES]
    assert all(a >= b for a, b in zip(fps_series, fps_series[1:]))
    assert all(a <= b for a, b in zip(dma_series, dma_series[1:]))
    # every HC configuration gives CHaiDNN at least its reserved share
    for (x, __), fps in zip(SHARES, fps_series):
        expected_floor = min(1.0, x / 100 * 1.2)  # memory is ~45 % of a
        # frame at this scale, so fps degrades slower than the share
        assert fps >= iso_fps * min(x / 100, expected_floor) * 0.5


def _run_tlm_pair():
    """HC-50-50 saturated contention: fast kernel vs TLM fast-forward."""
    shares = {0: 0.5, 1: 0.5}
    started = time.perf_counter()
    fast = run_case_study("hyperconnect", shares=shares, scale=SCALE,
                          window_cycles=TLM_WINDOW, fast=True)
    fast_s = time.perf_counter() - started
    started = time.perf_counter()
    tlm = run_case_study("hyperconnect", shares=shares, scale=SCALE,
                         window_cycles=TLM_WINDOW, tlm=True)
    tlm_s = time.perf_counter() - started
    return fast, tlm, fast_s, tlm_s


def test_tlm_fastforward(benchmark):
    fast, tlm, fast_s, tlm_s = benchmark.pedantic(_run_tlm_pair,
                                                  rounds=1, iterations=1)
    speedup = fast_s / tlm_s if tlm_s else float("inf")
    stats = tlm.skip_stats or {}
    skipped = stats.get("tlm_cycles_skipped", 0)
    rows = [
        f"HC-50-50 saturated contention, {TLM_WINDOW} cycles",
        f"fast kernel    {fast_s * 1e3:>9.0f} ms   "
        f"CHaiDNN {fast.chaidnn_fps:>6.0f} fps   "
        f"DMA {fast.dma_rate:>6.0f} rounds/s",
        f"tlm kernel     {tlm_s * 1e3:>9.0f} ms   "
        f"CHaiDNN {tlm.chaidnn_fps:>6.0f} fps   "
        f"DMA {tlm.dma_rate:>6.0f} rounds/s",
        f"speedup {speedup:.2f}x   epochs {stats.get('tlm_epochs', 0)}   "
        f"cycles skipped {skipped} "
        f"({skipped / TLM_WINDOW:.0%} of the window)   "
        f"demotions {stats.get('tlm_demotions', {})}",
    ]
    publish("fig5_tlm_fastforward", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        "cycles_per_sec": (TLM_WINDOW / tlm_s if tlm_s else None),
        "speedup": speedup,
        "window_cycles": TLM_WINDOW,
        "fast_ms": fast_s * 1e3,
        "tlm_ms": tlm_s * 1e3,
        "chaidnn_fps": {"fast": fast.chaidnn_fps, "tlm": tlm.chaidnn_fps},
        "tlm_epochs": stats.get("tlm_epochs", 0),
        "tlm_cycles_skipped": skipped,
        "tlm_rollbacks": stats.get("tlm_rollbacks", 0),
        "tlm_demotions": stats.get("tlm_demotions", {}),
    })
    benchmark.extra_info.update({"speedup": speedup,
                                 "tlm_epochs": stats.get("tlm_epochs", 0)})

    # acceptance: the fast-forward engine must actually engage and pay off
    assert stats.get("tlm_epochs", 0) > 0, "TLM never committed an epoch"
    assert speedup >= 2.0, (
        f"TLM speedup {speedup:.2f}x under saturated contention is below "
        "the 2x acceptance floor")
    # rate fidelity: fast-forwarded epochs must preserve the workload
    # shape (committed epochs summarize arbitration, so rates may drift
    # within the analytic bounds, not beyond them)
    assert fast.chaidnn_fps > 0 and tlm.chaidnn_fps > 0
    assert abs(tlm.chaidnn_fps - fast.chaidnn_fps) <= 0.3 * fast.chaidnn_fps
    assert fast.dma_rate > 0 and tlm.dma_rate > 0
    assert abs(tlm.dma_rate - fast.dma_rate) <= 0.3 * fast.dma_rate
