"""Fig. 3(b): maximum memory access time vs amount of data.

Paper result: the HyperConnect improves single-word response time by 28 %
and 16-word bursts by 25 %; on 16 KiB (256 bursts) and 4 MiB (65 536
bursts) the two interconnects deliver comparable throughput (the transfer
is memory-bound).
"""

import pytest

from repro.analysis import improvement
from repro.system import measure_access_time

from conftest import publish, wall_ms

SIZES = [
    ("1 word", 16),
    ("16-word burst", 256),
    ("16 KiB", 16 << 10),
    ("4 MiB", 4 << 20),
]

#: paper-reported improvements where stated; None = "comparable"
PAPER_GAIN = {"1 word": 0.28, "16-word burst": 0.25,
              "16 KiB": None, "4 MiB": None}


def _measure_all():
    results = {}
    for label, nbytes in SIZES:
        results[label] = (measure_access_time("hyperconnect", nbytes),
                          measure_access_time("smartconnect", nbytes))
    return results


def test_fig3b_access_time(benchmark):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    rows = ["size            HC (cycles)   SC (cycles)  improvement  paper"]
    gains = {}
    for label, __ in SIZES:
        hc, sc = results[label]
        gains[label] = improvement(sc, hc)
        paper = PAPER_GAIN[label]
        paper_text = f"{paper:.0%}" if paper is not None else "parity"
        rows.append(f"{label:<15}{hc:>12}{sc:>14}"
                    f"{gains[label]:>12.1%}  {paper_text}")
    hc_word, sc_word = results["1 word"]
    publish("fig3b_access_time", "\n".join(rows), metrics={
        "wall_ms": wall_ms(benchmark),
        # access-time probes, not a throughput window
        "speedup": sc_word / hc_word,
        "gains": gains,
    })

    benchmark.extra_info.update(
        {label: {"hc": hc, "sc": sc}
         for label, (hc, sc) in results.items()})

    # shape criteria
    assert gains["1 word"] == pytest.approx(0.28, abs=0.03)
    assert gains["16-word burst"] == pytest.approx(0.25, abs=0.04)
    assert abs(gains["16 KiB"]) < 0.05
    assert abs(gains["4 MiB"]) < 0.01
    # improvement decays monotonically with size
    ordered = [gains[label] for label, __ in SIZES]
    assert all(a > b for a, b in zip(ordered, ordered[1:]))
