"""Engineering benchmark: sharded parallel tick-engine scaling.

Not a paper figure — this tracks the throughput of
``Simulator(parallel=N)`` (see ``repro.sim.parallel``) against the
serial reference path on bursty contention workloads at 2, 4, and 8
ports.  Each port's DMA issues a burst of contended copy jobs at the
top of every window; the fabric drains the contention, then idles until
the next burst.  That duty cycle is the workload class the sharded
engine exists for: during the burst the per-port shards tick
independently, and across the idle tail the per-shard sleep tracking
and the frozen-horizon jump skip the dead cycles entirely — work the
reference path pays for cycle by cycle.

Every measured pair also asserts byte-identical traffic between the two
paths, so this bench doubles as a coarse divergence check (the
fine-grained one is ``tests/test_kernel_equivalence.py``).

Results are persisted to ``benchmarks/results/parallel_scaling.txt``
and, machine-readably, ``benchmarks/results/parallel_scaling.json``.
The CI perf-smoke job runs this module with ``PARALLEL_SCALING_WINDOW``
set to a short window and compares the sidecar against the committed
``parallel_scaling.baseline.json``; the 8-port speedup floor of 1.8x is
the acceptance bar for the engine.
"""

import gc
import os
import time

from repro.masters import AxiDma
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish

PORTS = (2, 4, 8)
WORKERS = int(os.environ.get("PARALLEL_SCALING_WORKERS", "4"))
BURSTS = int(os.environ.get("PARALLEL_SCALING_BURSTS", "4"))
WINDOW = int(os.environ.get("PARALLEL_SCALING_WINDOW", "30000"))
ROUNDS = int(os.environ.get("PARALLEL_SCALING_ROUNDS", "3"))
#: acceptance bar: the 8-port contention workload must clear this
SPEEDUP_FLOOR_8P = 1.8
JOBS_PER_BURST = 2
JOB_BYTES = 2048


def _run_workload(n_ports: int, parallel: int):
    """One full bursty-contention run; returns (cycles/sec, signature).

    The measured body covers the whole duty cycle — burst enqueue,
    contended drain, idle tail — for ``BURSTS`` windows.
    """
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048,
                          parallel=parallel)
    dmas = [AxiDma(soc.sim, f"dma{p}", soc.port(p))
            for p in range(n_ports)]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        for burst in range(BURSTS):
            for port, dma in enumerate(dmas):
                base = 0x100_0000 * (port + 1) + 0x10_0000 * burst
                for job in range(JOBS_PER_BURST):
                    dma.enqueue_copy(base + job * 0x8000,
                                     base + 0x800_0000 + job * 0x8000,
                                     JOB_BYTES)
            soc.sim.run(WINDOW)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    signature = tuple(
        (dma.bytes_read, dma.bytes_written, len(dma.jobs_completed),
         dma.error_responses)
        for dma in dmas)
    return BURSTS * WINDOW / elapsed, signature


def _measure(n_ports: int, parallel: int, rounds: int = ROUNDS):
    """Warm best-of-N throughput; asserts run-to-run determinism."""
    best = 0.0
    signature = None
    for _ in range(rounds):
        rate, outcome = _run_workload(n_ports, parallel)
        best = max(best, rate)
        assert signature is None or signature == outcome
        signature = outcome
    return best, signature


def test_parallel_scaling(benchmark):
    benchmark(lambda: _run_workload(8, WORKERS))

    rows = []
    per_ports = {}
    speedup_8p = None
    reference_8p = None
    for n_ports in PORTS:
        reference, ref_sig = _measure(n_ports, 0)
        parallel, par_sig = _measure(n_ports, WORKERS)
        assert par_sig == ref_sig      # zero divergence, every topology
        speedup = parallel / reference
        rows.append(
            f"  {n_ports} ports: reference {reference:>10,.0f} cyc/s   "
            f"parallel={WORKERS} {parallel:>10,.0f} cyc/s   "
            f"speedup {speedup:.2f}x")
        per_ports[str(n_ports)] = {
            "reference": reference,
            "parallel": parallel,
            "speedup": speedup,
            "signatures_equal": True,
        }
        if n_ports == 8:
            speedup_8p = speedup
            reference_8p = reference

    text = (
        f"bursty contention, {BURSTS} bursts x {WINDOW} cycle windows, "
        f"{JOBS_PER_BURST} x {JOB_BYTES} B copies per port per burst,\n"
        f"best of {ROUNDS} warm rounds, serial reference vs "
        f"parallel={WORKERS} (auto backend):\n" + "\n".join(rows))
    publish("parallel_scaling", text, metrics={
        "wall_ms": BURSTS * WINDOW / reference_8p * 1e3,
        "cycles_per_sec": reference_8p,
        "speedup": speedup_8p,
        "workers": WORKERS,
        "bursts": BURSTS,
        "window_cycles": WINDOW,
        "per_ports": per_ports,
    })
    if benchmark.stats is not None:
        benchmark.extra_info["speedup_8p"] = speedup_8p

    # acceptance bar for the sharded engine (ISSUE: >= 1.8x over the
    # serial reference path on the 8-port workload with 4 workers)
    assert speedup_8p >= SPEEDUP_FLOOR_8P, (
        f"8-port parallel speedup {speedup_8p:.2f}x below the "
        f"{SPEEDUP_FLOOR_8P}x acceptance floor")
    # and the reference path itself must stay plausible
    assert reference_8p > 10_000
