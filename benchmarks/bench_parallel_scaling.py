"""Engineering benchmark: sharded parallel tick-engine scaling.

Not a paper figure — this tracks the throughput of
``Simulator(parallel=N)`` (see ``repro.sim.parallel``) against the
serial reference path on bursty contention workloads at 2, 4, and 8
ports.  Each port's DMA issues a burst of contended copy jobs at the
top of every window; the fabric drains the contention, then idles until
the next burst.  That duty cycle is the workload class the sharded
engine exists for: during the burst the per-port shards tick
independently, and across the idle tail the per-shard sleep tracking
and the frozen-horizon jump skip the dead cycles entirely — work the
reference path pays for cycle by cycle.

Every measured pair also asserts byte-identical traffic between the two
paths, so this bench doubles as a coarse divergence check (the
fine-grained one is ``tests/test_kernel_equivalence.py``).

Two backend rows ride along with the thread-backend scaling table:

* an 8-engine offload farm (``repro.masters.offload``) measured serial
  vs ``parallel_backend="processes"`` — the process-exportable workload
  class the epoch-barrier backend exists for, and the bench behind the
  >= 3.5x CI gate on >= 4-CPU runners;
* the 8-port fabric re-run with ``parallel_backend="processes"``
  requested, which records the resolved backend (``threads``) and the
  blocker reason — hub-coupled fabric shards can never leave the
  parent, and the attribution trail in the sidecar proves the fallback
  is deliberate, not silent.

Results are persisted to ``benchmarks/results/parallel_scaling.txt``
and, machine-readably, ``benchmarks/results/parallel_scaling.json``.
The CI perf-smoke job runs this module with ``PARALLEL_SCALING_WINDOW``
set to a short window and compares the sidecar against the committed
``parallel_scaling.baseline.json``; the 8-port speedup floor of 1.8x is
the acceptance bar for the threads engine, and the farm's process
speedup is gated at >= 3.5x whenever the host has >= 4 CPUs.
"""

import gc
import os
import time

from repro.masters import AxiDma, build_offload_sim
from repro.platforms import ZCU102
from repro.system import SocSystem

from conftest import publish

PORTS = (2, 4, 8)
WORKERS = int(os.environ.get("PARALLEL_SCALING_WORKERS", "4"))
BURSTS = int(os.environ.get("PARALLEL_SCALING_BURSTS", "4"))
WINDOW = int(os.environ.get("PARALLEL_SCALING_WINDOW", "30000"))
ROUNDS = int(os.environ.get("PARALLEL_SCALING_ROUNDS", "3"))
#: acceptance bar: the 8-port contention workload must clear this
SPEEDUP_FLOOR_8P = 1.8
JOBS_PER_BURST = 2
JOB_BYTES = 2048

# offload-farm (processes backend) knobs
FARM_ENGINES = int(os.environ.get("PARALLEL_SCALING_FARM_ENGINES", "8"))
FARM_WORKERS = int(os.environ.get("PARALLEL_SCALING_FARM_WORKERS", "8"))
FARM_JOBS_PER_ENGINE = int(
    os.environ.get("PARALLEL_SCALING_FARM_JOBS", "600"))
FARM_ITERS = int(os.environ.get("PARALLEL_SCALING_FARM_ITERS", "200"))
FARM_ROUNDS = int(os.environ.get("PARALLEL_SCALING_FARM_ROUNDS", "2"))
FARM_LATENCY = 64
#: CI gate: farm process speedup on hosts with at least this many CPUs
PROCESS_SPEEDUP_FLOOR = 3.5
PROCESS_GATE_MIN_CPUS = 4


def _run_workload(n_ports: int, parallel: int, backend: str = "auto"):
    """One full bursty-contention run; returns (cycles/sec, signature).

    The measured body covers the whole duty cycle — burst enqueue,
    contended drain, idle tail — for ``BURSTS`` windows.
    """
    soc = SocSystem.build(ZCU102, n_ports=n_ports, period=2048,
                          parallel=parallel, parallel_backend=backend)
    dmas = [AxiDma(soc.sim, f"dma{p}", soc.port(p))
            for p in range(n_ports)]
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        for burst in range(BURSTS):
            for port, dma in enumerate(dmas):
                base = 0x100_0000 * (port + 1) + 0x10_0000 * burst
                for job in range(JOBS_PER_BURST):
                    dma.enqueue_copy(base + job * 0x8000,
                                     base + 0x800_0000 + job * 0x8000,
                                     JOB_BYTES)
            soc.sim.run(WINDOW)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    signature = tuple(
        (dma.bytes_read, dma.bytes_written, len(dma.jobs_completed),
         dma.error_responses)
        for dma in dmas)
    return BURSTS * WINDOW / elapsed, signature


def _measure(n_ports: int, parallel: int, rounds: int = ROUNDS):
    """Warm best-of-N throughput; asserts run-to-run determinism."""
    best = 0.0
    signature = None
    for _ in range(rounds):
        rate, outcome = _run_workload(n_ports, parallel)
        best = max(best, rate)
        assert signature is None or signature == outcome
        signature = outcome
    return best, signature


def _run_farm(parallel: int, backend: str):
    """One offload-farm run; returns (cycles/sec, signature, resolved).

    Unlike the bursty fabric workload, the farm is compute-bound every
    cycle: the hub streams one job per engine per cycle until the job
    budget drains, so the run window is sized to the job budget plus
    the request/result pipeline depth.
    """
    n_jobs = FARM_ENGINES * FARM_JOBS_PER_ENGINE
    window = FARM_JOBS_PER_ENGINE + 4 * FARM_LATENCY
    sim = build_offload_sim(FARM_ENGINES, latency=FARM_LATENCY,
                            work_iters=FARM_ITERS, n_jobs=n_jobs,
                            parallel=parallel, parallel_backend=backend)
    hub = sim.lookup("offload-hub")
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        started = time.perf_counter()
        sim.run(window)
        elapsed = time.perf_counter() - started
    finally:
        if gc_was_enabled:
            gc.enable()
    assert hub.done, (
        f"farm window too short: {hub.results_received}/{n_jobs} jobs")
    signature = (hub.results_received, hub.checksum, tuple(
        (engine.jobs_done, engine.checksum) for engine in hub.engines))
    resolved = sim.skip_stats.resolved_backend
    if sim._parallel_engine is not None:
        sim._parallel_engine.close()
    return window / elapsed, signature, resolved


def _measure_farm(parallel: int, backend: str, rounds: int = FARM_ROUNDS):
    """Warm best-of-N farm throughput; asserts run-to-run determinism."""
    best = 0.0
    signature = None
    resolved = None
    for _ in range(rounds):
        rate, outcome, resolved = _run_farm(parallel, backend)
        best = max(best, rate)
        assert signature is None or signature == outcome
        signature = outcome
    return best, signature, resolved


def _fabric_process_attribution():
    """Request ``processes`` on the 8-port fabric; return the trail.

    The fabric's shards are hub-coupled (ports call into the central
    arbitration unit), so the request must degrade to ``threads`` with
    a recorded reason — this row exists so the sidecar shows the
    fallback attribution, not just the absence of a processes row.
    """
    soc = SocSystem.build(ZCU102, n_ports=8, period=2048,
                          parallel=WORKERS, parallel_backend="processes")
    dmas = [AxiDma(soc.sim, f"dma{p}", soc.port(p)) for p in range(8)]
    for port, dma in enumerate(dmas):
        dma.enqueue_copy(0x100_0000 * (port + 1),
                         0x900_0000 * (port + 1), JOB_BYTES)
    soc.sim.run(4096)
    trail = dict(soc.sim._parallel_engine.backend_resolution)
    trail.pop("process_shards", None)
    return trail


def test_parallel_scaling(benchmark):
    benchmark(lambda: _run_workload(8, WORKERS))

    rows = []
    per_ports = {}
    speedup_8p = None
    reference_8p = None
    for n_ports in PORTS:
        reference, ref_sig = _measure(n_ports, 0)
        parallel, par_sig = _measure(n_ports, WORKERS)
        assert par_sig == ref_sig      # zero divergence, every topology
        speedup = parallel / reference
        rows.append(
            f"  {n_ports} ports: reference {reference:>10,.0f} cyc/s   "
            f"parallel={WORKERS} {parallel:>10,.0f} cyc/s   "
            f"speedup {speedup:.2f}x")
        per_ports[str(n_ports)] = {
            "reference": reference,
            "parallel": parallel,
            "speedup": speedup,
            "signatures_equal": True,
        }
        if n_ports == 8:
            speedup_8p = speedup
            reference_8p = reference

    # processes backend: the offload farm is the exportable workload;
    # serial reference vs FARM_WORKERS long-lived worker processes
    farm_ref, farm_ref_sig, _ = _measure_farm(0, "inline")
    farm_proc, farm_proc_sig, farm_resolved = _measure_farm(
        FARM_WORKERS, "processes")
    assert farm_proc_sig == farm_ref_sig   # zero divergence across OS
    farm_speedup = farm_proc / farm_ref
    cpus = os.cpu_count() or 1
    rows.append(
        f"  {FARM_ENGINES}-engine farm: reference {farm_ref:>10,.0f} "
        f"cyc/s   processes={FARM_WORKERS} {farm_proc:>10,.0f} cyc/s   "
        f"speedup {farm_speedup:.2f}x ({cpus} CPUs, resolved "
        f"{farm_resolved})")

    # fabric shards are hub-coupled; a processes request must degrade
    # to threads with the blocker recorded, never silently
    fabric_trail = _fabric_process_attribution()
    assert fabric_trail["requested"] == "processes"
    assert fabric_trail["resolved"] == "threads"
    short_reason = fabric_trail["reason"].split(" (blockers")[0]
    rows.append(
        f"  8-port fabric, processes requested: resolved "
        f"{fabric_trail['resolved']} ({short_reason}; per-shard "
        f"blockers in the JSON sidecar)")

    text = (
        f"bursty contention, {BURSTS} bursts x {WINDOW} cycle windows, "
        f"{JOBS_PER_BURST} x {JOB_BYTES} B copies per port per burst,\n"
        f"best of {ROUNDS} warm rounds, serial reference vs "
        f"parallel={WORKERS} (auto backend);\n"
        f"offload farm: {FARM_ENGINES} engines x "
        f"{FARM_JOBS_PER_ENGINE} jobs, {FARM_ITERS} digest iters, "
        f"epoch {FARM_LATENCY}, best of {FARM_ROUNDS} rounds:\n"
        + "\n".join(rows))
    publish("parallel_scaling", text, metrics={
        "wall_ms": BURSTS * WINDOW / reference_8p * 1e3,
        "cycles_per_sec": reference_8p,
        "speedup": speedup_8p,
        "workers": WORKERS,
        "bursts": BURSTS,
        "window_cycles": WINDOW,
        "per_ports": per_ports,
        "cpus": cpus,
        "farm": {
            "engines": FARM_ENGINES,
            "workers": FARM_WORKERS,
            "reference": farm_ref,
            "processes": farm_proc,
            "speedup": farm_speedup,
            "resolved_backend": farm_resolved,
            "signatures_equal": True,
        },
        "fabric_processes_request": fabric_trail,
    })
    if benchmark.stats is not None:
        benchmark.extra_info["speedup_8p"] = speedup_8p
        benchmark.extra_info["farm_process_speedup"] = farm_speedup

    # acceptance bar for the sharded engine (ISSUE: >= 1.8x over the
    # serial reference path on the 8-port workload with 4 workers)
    assert speedup_8p >= SPEEDUP_FLOOR_8P, (
        f"8-port parallel speedup {speedup_8p:.2f}x below the "
        f"{SPEEDUP_FLOOR_8P}x acceptance floor")
    # and the reference path itself must stay plausible
    assert reference_8p > 10_000
    # processes gate: only meaningful where worker processes can
    # actually overlap (single-core runners record, but don't gate)
    if cpus >= PROCESS_GATE_MIN_CPUS:
        assert farm_resolved == "processes", (
            f"farm resolved to {farm_resolved!r} on a {cpus}-CPU host")
        assert farm_speedup >= PROCESS_SPEEDUP_FLOOR, (
            f"{FARM_ENGINES}-engine farm process speedup "
            f"{farm_speedup:.2f}x below the {PROCESS_SPEEDUP_FLOOR}x "
            f"floor on a {cpus}-CPU host")
